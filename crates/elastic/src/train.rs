//! Shrink-and-continue training.
//!
//! [`train_elastic`] is a synchronous data-parallel SGD loop built
//! entirely on the comm layer's *fallible* surface: every collective is a
//! `try_*` call, so a dying rank surfaces as a [`TransportError`] value at
//! the exact iteration it happened, and the loop's reaction — census,
//! shrink, re-rendezvous, catch-up, retry the same step — is ordinary
//! control flow instead of unwinding.
//!
//! The model is a deterministic least-squares probe (`min_w ½‖Xw − y‖²`
//! over a SplitMix64-synthesized dataset): small enough that a soak test
//! can run dozens of iterations over real sockets in seconds, convex
//! enough that "still converges after losing a rank" is a crisp,
//! assertable claim. Gradients sync either densely
//! ([`SyncKind::Dense`], exact averaging) or through the paper's A2SGD
//! two-mean encoding ([`SyncKind::A2sgd`]): each rank ships only
//! `(µ⁺, µ⁻, n⁺, n⁻)` — the O(1) packet — keeps its residual ε locally,
//! and reconstructs `ε + sign·µ̄±` from the count-weighted global means.
//!
//! Recovery protocol, in step order:
//!
//! 1. a collective returns `Err` (or a heartbeat marks a peer dead);
//! 2. [`ElasticComm::shrink_and_reconnect`] — census, identical shrunken
//!    [`cluster_comm::WorldSpec`] on every survivor, fresh TCP world on
//!    the next epoch's master port;
//! 3. catch-up: the new rank 0 broadcasts `(step, w, velocity)` so every
//!    survivor — including a cold restart that loaded an
//!    [`a2sgd::Checkpoint`] — resumes from the same consistent state;
//! 4. the interrupted step is retried in the shrunken world.
//!
//! Because the loop is synchronous, no survivor can have applied the
//! interrupted step (the collective needs every rank), so retrying it is
//! exact, not a heuristic.

use crate::fault::{splitmix64, FaultPlan};
use crate::membership::Membership;
use crate::recover::ElasticComm;
use a2sgd::{Checkpoint, SchedCheckpoint};
use a2sgd_sched::{SchedKind, SchedState, SyncDecision, SyncObservation, SyncSchedule};
use cluster_comm::{CommHandle, TransportError};
use std::path::PathBuf;

/// Gradient synchronization flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncKind {
    /// Exact dense allreduce-average.
    #[default]
    Dense,
    /// A2SGD two-mean averaging: O(1) bytes per rank on the wire, local
    /// residual feedback (Algorithm 1 of the paper).
    A2sgd,
}

/// Configuration for one elastic run. Everything is derived from `seed`,
/// so two runs with equal configs are bit-identical.
#[derive(Debug, Clone)]
pub struct ElasticTrainConfig {
    /// Model/feature dimension.
    pub dim: usize,
    /// Synthetic dataset size (samples).
    pub samples: usize,
    /// Mini-batch per rank per step.
    pub batch_per_worker: usize,
    /// Total steps to train (global step counter target).
    pub iters: u64,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Master seed: dataset, hidden target, fault schedules.
    pub seed: u64,
    /// Gradient sync flavor.
    pub sync: SyncKind,
    /// Sync schedule: which steps run `sync` at all. `Local` steps apply
    /// the purely local SGD update (zero wire traffic); the `Sync` step
    /// closing an H-step window averages *parameters* as the
    /// pseudo-gradient `Δ = w_anchor − w` through the same `sync` path, so
    /// under [`SyncKind::A2sgd`] a whole window of training still costs
    /// one 64-bit packet. Degenerate (length-1) windows take the classic
    /// gradient path, making `fixed1` bit-identical to `every`.
    pub schedule: SchedKind,
    /// `Some(k)`: the current rank 0 snapshots state every `k` steps into
    /// `ckpt_dir`.
    pub checkpoint_every: Option<u64>,
    /// Checkpoint directory (required when `checkpoint_every` is set).
    pub ckpt_dir: Option<PathBuf>,
    /// Cold-restart source: load this checkpoint before training; its
    /// state then flows to every rank through the catch-up broadcast.
    pub resume_from: Option<PathBuf>,
}

impl ElasticTrainConfig {
    /// A small, fast-converging default used by the soak tests.
    pub fn probe(seed: u64) -> Self {
        ElasticTrainConfig {
            dim: 8,
            samples: 256,
            batch_per_worker: 8,
            iters: 30,
            lr: 0.4,
            momentum: 0.9,
            seed,
            sync: SyncKind::Dense,
            schedule: SchedKind::EveryStep,
            checkpoint_every: None,
            ckpt_dir: None,
            resume_from: None,
        }
    }
}

/// What one rank's elastic run produced.
#[derive(Debug, Clone)]
pub struct ElasticRunReport {
    /// Full-dataset loss at the final parameters.
    pub final_loss: f64,
    /// Final parameter vector — bit-identical across survivors (the loop
    /// closes with Algorithm 1's parameter re-synchronization, which
    /// collapses A2SGD's per-rank residual drift).
    pub final_params: Vec<f32>,
    /// World size when training finished.
    pub world_at_end: usize,
    /// Number of shrink-and-continue recoveries performed.
    pub recoveries: usize,
    /// Steps actually applied (equals `iters` for completed runs).
    pub steps_done: u64,
    /// Steps that ran the configured gradient/parameter sync.
    pub sync_steps: u64,
    /// Steps that skipped the synchronizer under the sync schedule
    /// (`sync_steps + local_steps == steps_done`).
    pub local_steps: u64,
    /// True when this rank was a scripted casualty (it returns early with
    /// the state it had at death; peers recover without it).
    pub killed: bool,
}

/// `[0, 1)` float from a hash lane.
fn unit(h: u64) -> f32 {
    ((h >> 40) as f32) / (1u64 << 24) as f32
}

/// Feature `j` of sample `i` — pure function of the seed.
fn feature(seed: u64, i: usize, j: usize, dim: usize) -> f32 {
    unit(splitmix64(seed ^ (1 + i as u64 * dim as u64 + j as u64))) * 2.0 - 1.0
}

/// The hidden target weight vector the labels are synthesized from.
fn hidden_w(seed: u64, dim: usize) -> Vec<f32> {
    (0..dim).map(|j| unit(splitmix64(seed ^ 0x57A7 ^ (j as u64) << 32)) * 2.0 - 1.0).collect()
}

fn label(seed: u64, i: usize, dim: usize, wstar: &[f32]) -> f32 {
    (0..dim).map(|j| feature(seed, i, j, dim) * wstar[j]).sum()
}

/// Mean-squared loss `½·mean((x·w − y)²)` over the whole dataset.
pub fn full_loss(cfg: &ElasticTrainConfig, w: &[f32]) -> f64 {
    let wstar = hidden_w(cfg.seed, cfg.dim);
    let mut acc = 0.0f64;
    for i in 0..cfg.samples {
        let pred: f32 = (0..cfg.dim).map(|j| feature(cfg.seed, i, j, cfg.dim) * w[j]).sum();
        let err = (pred - label(cfg.seed, i, cfg.dim, &wstar)) as f64;
        acc += 0.5 * err * err;
    }
    acc / cfg.samples as f64
}

/// This rank's local mini-batch gradient at `step` — sample indices are a
/// pure function of `(step, world, rank)`, so the shard layout is
/// identical on every run and re-derives cleanly after a shrink.
fn local_grad(
    cfg: &ElasticTrainConfig,
    step: u64,
    world: usize,
    rank: usize,
    w: &[f32],
) -> Vec<f32> {
    let wstar = hidden_w(cfg.seed, cfg.dim);
    let mut g = vec![0.0f32; cfg.dim];
    let b = cfg.batch_per_worker;
    for k in 0..b {
        let i = ((step as usize * world + rank) * b + k) % cfg.samples;
        let pred: f32 = (0..cfg.dim).map(|j| feature(cfg.seed, i, j, cfg.dim) * w[j]).sum();
        let err = pred - label(cfg.seed, i, cfg.dim, &wstar);
        for (j, gj) in g.iter_mut().enumerate() {
            *gj += err * feature(cfg.seed, i, j, cfg.dim);
        }
    }
    for gj in &mut g {
        *gj /= b as f32;
    }
    g
}

/// One fallible gradient sync. Dense: exact average. A2SGD: allgather the
/// O(1) `(µ⁺, µ⁻, n⁺, n⁻)` packet, reconstruct from count-weighted global
/// means, keep the residual locally (error feedback).
fn sync_gradient(
    comm: &mut CommHandle,
    kind: SyncKind,
    g: &mut [f32],
) -> Result<(), TransportError> {
    match kind {
        SyncKind::Dense => comm.try_allreduce_avg(g),
        SyncKind::A2sgd => {
            let means = a2sgd::split_means(g);
            let mask = a2sgd::mean2::residual_in_place(g, &means);
            let packet = [
                means.mu_pos.to_bits() as u64,
                means.mu_neg.to_bits() as u64,
                means.n_pos as u64,
                means.n_neg as u64,
            ];
            let all = comm.try_allgather(&packet)?;
            let (mut pos, mut neg, mut np, mut nn) = (0.0f64, 0.0f64, 0u64, 0u64);
            for p in &all {
                let (mp, mn) = (f32::from_bits(p[0] as u32), f32::from_bits(p[1] as u32));
                pos += mp as f64 * p[2] as f64;
                neg += mn as f64 * p[3] as f64;
                np += p[2];
                nn += p[3];
            }
            let mu_pos = if np > 0 { (pos / np as f64) as f32 } else { 0.0 };
            let mu_neg = if nn > 0 { (neg / nn as f64) as f32 } else { 0.0 };
            a2sgd::restore_with_global_means(g, &mask, mu_pos, mu_neg);
            Ok(())
        }
    }
}

/// Post-(re)connect state alignment: the current rank 0 broadcasts
/// `(step, w, velocity)` and everyone adopts it. f32 payloads travel as
/// exact bit patterns, so survivors stay bit-identical.
fn catch_up(
    comm: &mut CommHandle,
    w: &mut [f32],
    vel: &mut [f32],
    step: &mut u64,
) -> Result<(), TransportError> {
    let mut hdr = [*step];
    comm.try_broadcast(0, &mut hdr)?;
    *step = hdr[0];
    comm.try_broadcast(0, w)?;
    comm.try_broadcast(0, vel)?;
    Ok(())
}

/// Schedule-phase alignment, run right after [`catch_up`] whenever a
/// non-trivial schedule is configured: the current rank 0 broadcasts its
/// window phase (`local_in_window`, the adaptive period, the adaptive
/// reference dispersion as exact bits) plus the window-anchor parameters,
/// so survivors — and a cold restart that loaded the checkpoint's
/// [`SchedCheckpoint`] — re-enter the period at the same point instead of
/// restarting the window from scratch.
fn catch_up_schedule(
    comm: &mut CommHandle,
    schedule: &mut dyn SyncSchedule,
    anchor: &mut [f32],
) -> Result<(), TransportError> {
    let s = schedule.state();
    let mut hdr = [s.local_in_window, s.current_h, s.ref_dispersion.to_bits()];
    comm.try_broadcast(0, &mut hdr)?;
    schedule.load_state(SchedState {
        local_in_window: hdr[0],
        current_h: hdr[1],
        ref_dispersion: f64::from_bits(hdr[2]),
    });
    comm.try_broadcast(0, anchor)?;
    Ok(())
}

/// Rank-agreed dispersion for adaptive schedules: every rank contributes
/// `(Σ(pre−post)², Σpost²)` over the quantity it just synchronized, the
/// sums are combined in rank order from exact f64 bit patterns, and the
/// ratio is identical everywhere — safe to feed a schedule controller
/// that must stay in lockstep.
fn gathered_dispersion(
    comm: &mut CommHandle,
    pre: &[f32],
    post: &[f32],
) -> Result<f64, TransportError> {
    let mut drift = 0.0f64;
    let mut norm = 0.0f64;
    for (a, b) in pre.iter().zip(post) {
        let d = (*a - *b) as f64;
        drift += d * d;
        norm += (*b as f64) * (*b as f64);
    }
    let all = comm.try_allgather(&[drift.to_bits(), norm.to_bits()])?;
    let (mut dsum, mut nsum) = (0.0f64, 0.0f64);
    for lane in &all {
        dsum += f64::from_bits(lane[0]);
        nsum += f64::from_bits(lane[1]);
    }
    Ok(dsum / (nsum + 1e-24))
}

/// Rank 0 snapshots `(step, w, vel)` — plus the schedule phase and window
/// anchor under a non-trivial schedule — whenever `step` lands on the
/// checkpoint cadence. The schedule block makes a cold restart bit-exact
/// even from a snapshot taken mid-window.
fn maybe_checkpoint(
    cfg: &ElasticTrainConfig,
    rank: usize,
    step: u64,
    w: &[f32],
    vel: &[f32],
    schedule: &dyn SyncSchedule,
    anchor: &[f32],
) -> Result<(), String> {
    let (Some(every), Some(dir)) = (cfg.checkpoint_every, &cfg.ckpt_dir) else {
        return Ok(());
    };
    if rank != 0 || every == 0 || step % every != 0 {
        return Ok(());
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
    let sched = (!schedule.is_every_step()).then(|| {
        let s = schedule.state();
        SchedCheckpoint {
            local_in_window: s.local_in_window,
            current_h: s.current_h,
            ref_dispersion: s.ref_dispersion,
            anchor: anchor.to_vec(),
        }
    });
    let c = Checkpoint {
        step,
        seed: cfg.seed,
        params: w.to_vec(),
        velocity: vec![vel.to_vec()],
        sched,
    };
    c.write(&dir.join(Checkpoint::file_name(step)))
}

/// Runs the elastic training loop on `ec` under the (per-rank) fault
/// plan. Returns this rank's report; a scripted casualty returns early
/// with `killed: true` while its peers shrink and finish without it.
pub fn train_elastic(
    mut ec: ElasticComm,
    cfg: &ElasticTrainConfig,
    plan: &FaultPlan,
) -> Result<ElasticRunReport, String> {
    if a2sgd_trace::enabled() {
        a2sgd_trace::set_thread_rank(ec.orig_rank);
    }
    let mut w = vec![0.0f32; cfg.dim];
    let mut vel = vec![0.0f32; cfg.dim];
    let mut step = 0u64;
    let mut schedule = cfg.schedule.build();
    let scheduled = !cfg.schedule.is_every_step();
    let mut ckpt_sched: Option<SchedCheckpoint> = None;
    if let Some(path) = &cfg.resume_from {
        let c = Checkpoint::read(path)?;
        if c.seed != cfg.seed {
            return Err(format!("checkpoint seed {:#x} != config seed {:#x}", c.seed, cfg.seed));
        }
        w = c.params;
        vel = c.velocity.into_iter().next().unwrap_or_else(|| vec![0.0; cfg.dim]);
        step = c.step;
        ckpt_sched = c.sched;
    }
    // Everyone adopts rank 0's state — no-op on a fresh start, the resume
    // fan-out on a cold restart.
    catch_up(&mut ec.comm, &mut w, &mut vel, &mut step).map_err(|e| e.to_string())?;
    let mut anchor = w.clone();
    if scheduled {
        // A checkpoint written mid-window carries the schedule phase and
        // the window anchor; only the loading rank has them, and the
        // schedule catch-up fans both out below.
        if let Some(sc) = ckpt_sched {
            schedule.load_state(SchedState {
                local_in_window: sc.local_in_window,
                current_h: sc.current_h,
                ref_dispersion: sc.ref_dispersion,
            });
            if sc.anchor.len() == cfg.dim {
                anchor = sc.anchor;
            }
        }
        catch_up_schedule(&mut ec.comm, schedule.as_mut(), &mut anchor)
            .map_err(|e| e.to_string())?;
    }

    let mut member = Membership::new(ec.rank(), ec.world());
    let mut recoveries = 0usize;
    let mut sync_steps = 0u64;
    let mut local_steps = 0u64;
    let mut first_sync_pending = false;

    while step < cfg.iters {
        if plan.kill_at_iter == Some(step) {
            // Scripted death: drop everything without a goodbye — to the
            // peers this is indistinguishable from a SIGKILL.
            if a2sgd_trace::enabled() {
                a2sgd_trace::instant("elastic/killed", a2sgd_trace::Args::Value(step as f64));
            }
            let final_loss = full_loss(cfg, &w);
            return Ok(ElasticRunReport {
                final_loss,
                final_params: w,
                world_at_end: ec.world(),
                recoveries,
                steps_done: step,
                sync_steps,
                local_steps,
                killed: true,
            });
        }

        // Heartbeat plane: notice silent deaths between collectives.
        let failed = if member.beat(ec.comm.transport_mut()).is_empty() {
            let decision = if scheduled { schedule.decide(step) } else { SyncDecision::Sync };
            match decision {
                SyncDecision::Local => {
                    // Purely local SGD update: zero wire traffic and no
                    // collective that could surface a peer death.
                    let g = local_grad(cfg, step, ec.world(), ec.rank(), &w);
                    for j in 0..cfg.dim {
                        vel[j] = cfg.momentum * vel[j] + g[j];
                        w[j] -= cfg.lr * vel[j];
                    }
                    schedule.record(SyncDecision::Local);
                    local_steps += 1;
                    step += 1;
                    maybe_checkpoint(cfg, ec.rank(), step, &w, &vel, schedule.as_ref(), &anchor)?;
                    false
                }
                SyncDecision::Sync => {
                    let mut g = local_grad(cfg, step, ec.world(), ec.rank(), &w);
                    let window_len = if scheduled { schedule.local_in_window() + 1 } else { 1 };
                    let want_disp = scheduled && schedule.wants_dispersion();
                    let res: Result<(), TransportError> = if window_len == 1 {
                        // Degenerate window: the classic gradient path —
                        // bit-identical to the unscheduled loop.
                        (|| {
                            let pre = want_disp.then(|| g.clone());
                            sync_gradient(&mut ec.comm, cfg.sync, &mut g)?;
                            if let Some(p) = pre {
                                let d = gathered_dispersion(&mut ec.comm, &p, &g)?;
                                schedule
                                    .observe_sync(&SyncObservation { dispersion: d, window_len });
                            }
                            for j in 0..cfg.dim {
                                vel[j] = cfg.momentum * vel[j] + g[j];
                                w[j] -= cfg.lr * vel[j];
                            }
                            Ok(())
                        })()
                    } else {
                        // Window close: take the local step into scratch
                        // state, average parameters as the pseudo-gradient
                        // Δ = anchor − w through the same sync path, and
                        // commit only on success — a mid-sync peer death
                        // leaves (w, vel) untouched, so the retried step
                        // replays exactly like any other.
                        (|| {
                            let mut vel2 = vel.clone();
                            let mut w2 = w.clone();
                            for j in 0..cfg.dim {
                                vel2[j] = cfg.momentum * vel2[j] + g[j];
                                w2[j] -= cfg.lr * vel2[j];
                            }
                            let mut delta: Vec<f32> =
                                anchor.iter().zip(&w2).map(|(a, b)| a - b).collect();
                            let pre = want_disp.then(|| delta.clone());
                            sync_gradient(&mut ec.comm, cfg.sync, &mut delta)?;
                            if let Some(p) = pre {
                                let d = gathered_dispersion(&mut ec.comm, &p, &delta)?;
                                schedule
                                    .observe_sync(&SyncObservation { dispersion: d, window_len });
                            }
                            for j in 0..cfg.dim {
                                w[j] = anchor[j] - delta[j];
                            }
                            vel = vel2;
                            Ok(())
                        })()
                    };
                    match res {
                        Ok(()) => {
                            if first_sync_pending {
                                first_sync_pending = false;
                                if a2sgd_trace::enabled() {
                                    a2sgd_trace::instant(
                                        "elastic/first_sync",
                                        a2sgd_trace::Args::Value(step as f64),
                                    );
                                }
                            }
                            if scheduled {
                                schedule.record(SyncDecision::Sync);
                                anchor.copy_from_slice(&w);
                            }
                            sync_steps += 1;
                            step += 1;
                            maybe_checkpoint(
                                cfg,
                                ec.rank(),
                                step,
                                &w,
                                &vel,
                                schedule.as_ref(),
                                &anchor,
                            )?;
                            false
                        }
                        Err(e) => {
                            if a2sgd_trace::enabled() {
                                let peer = match &e {
                                    TransportError::PeerClosed { peer, .. }
                                    | TransportError::SendFailed { peer, .. } => *peer,
                                };
                                a2sgd_trace::instant(
                                    "elastic/peer_dead",
                                    a2sgd_trace::Args::Value(peer as f64),
                                );
                            }
                            true
                        }
                    }
                }
            }
        } else {
            true
        };

        if failed {
            // Shrink-and-continue: census, re-rendezvous, catch-up, and
            // retry the interrupted step in the smaller world.
            ec = ec.shrink_and_reconnect()?;
            catch_up(&mut ec.comm, &mut w, &mut vel, &mut step)
                .map_err(|e| format!("catch-up after recovery: {e}"))?;
            if scheduled {
                // Survivors were in lockstep already, but the broadcast also
                // rehydrates the phase on a replacement that started cold.
                catch_up_schedule(&mut ec.comm, schedule.as_mut(), &mut anchor)
                    .map_err(|e| format!("schedule catch-up after recovery: {e}"))?;
            }
            member = Membership::new(ec.rank(), ec.world());
            recoveries += 1;
            first_sync_pending = true;
        }
    }

    // Algorithm 1 lines 9–10: final parameter re-synchronization. Under
    // A2SGD sync the per-rank residual feedback makes workers drift; the
    // closing average collapses them to one model (a no-op disguised as an
    // average under dense sync, where ranks are already bit-identical).
    // Elastic to the end: a death here recovers and retries like any
    // other step.
    loop {
        match ec.comm.try_allreduce_avg(&mut w) {
            Ok(()) => break,
            Err(_) => {
                ec = ec.shrink_and_reconnect()?;
                catch_up(&mut ec.comm, &mut w, &mut vel, &mut step)
                    .map_err(|e| format!("catch-up after recovery: {e}"))?;
                recoveries += 1;
            }
        }
    }

    Ok(ElasticRunReport {
        final_loss: full_loss(cfg, &w),
        final_params: w,
        world_at_end: ec.world(),
        recoveries,
        steps_done: step,
        sync_steps,
        local_steps,
        killed: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_comm::{run_cluster, NetworkProfile};

    #[test]
    fn both_sync_flavors_agree_across_ranks_and_converge() {
        for kind in [SyncKind::Dense, SyncKind::A2sgd] {
            let cfg = ElasticTrainConfig { sync: kind, ..ElasticTrainConfig::probe(11) };
            // Plain (non-elastic) loop over the in-proc backend: the sync
            // and SGD math is backend-agnostic, so this pins convergence
            // and cross-rank agreement cheaply.
            let out = run_cluster(2, NetworkProfile::infiniband_100g(), |h| {
                let mut w = vec![0.0f32; cfg.dim];
                let mut vel = vec![0.0f32; cfg.dim];
                for step in 0..cfg.iters {
                    let mut g = local_grad(&cfg, step, h.world(), h.rank(), &w);
                    sync_gradient(h, cfg.sync, &mut g).unwrap();
                    for j in 0..cfg.dim {
                        vel[j] = cfg.momentum * vel[j] + g[j];
                        w[j] -= cfg.lr * vel[j];
                    }
                }
                // Algorithm 1 lines 9–10: collapse residual drift.
                h.allreduce_avg(&mut w);
                (full_loss(&cfg, &w), w)
            });
            let (loss0, w0) = &out[0];
            let (loss1, w1) = &out[1];
            assert_eq!(
                w0.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                w1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{kind:?}: ranks diverged"
            );
            assert_eq!(loss0, loss1);
            let start = full_loss(&cfg, &vec![0.0; cfg.dim]);
            // The two-mean quantizer trades per-step accuracy for the
            // O(1) packet, so it needs a looser bar at equal iterations.
            let bar = if kind == SyncKind::Dense { 0.05 } else { 0.3 };
            assert!(*loss0 < start * bar, "{kind:?} failed to converge: {loss0} (start {start})");
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let cfg = ElasticTrainConfig::probe(3);
        let w = vec![0.1f32; cfg.dim];
        let a = local_grad(&cfg, 4, 3, 1, &w);
        let b = local_grad(&cfg, 4, 3, 1, &w);
        assert_eq!(a, b);
        // Different ranks see different batches.
        assert_ne!(a, local_grad(&cfg, 4, 3, 2, &w));
    }
}
