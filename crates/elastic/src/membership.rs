//! Heartbeat/liveness tracking over the existing tag space.
//!
//! Every rank periodically sends a monotone sequence number to every peer
//! on [`HEARTBEAT_TAG`] — a tag inside the reserved
//! [`cluster_comm::ELASTIC_TAG`] namespace, which collective tag matching
//! never touches and `tag_space` accounting deliberately ignores — and
//! drains whatever heartbeats its peers have sent. A peer whose link
//! returns a [`TransportError`] on either path is marked dead and never
//! resurrects (within one membership generation; recovery builds a fresh
//! [`Membership`] for the shrunken world).
//!
//! Heartbeats are advisory: in a synchronous training loop the collective
//! itself is the authoritative failure detector (it cannot complete
//! without every rank), but the heartbeat plane notices deaths *between*
//! collectives — e.g. a rank that dies while everyone computes — and its
//! `elastic/peer_dead` trace instants timestamp the detection for the
//! recovery-timeline audit.

use cluster_comm::transport::wire::PayloadRef;
use cluster_comm::{Transport, ELASTIC_TAG};

/// The heartbeat control tag: inside the elastic namespace, distinct from
/// every goodbye/census tag the transports use internally.
pub const HEARTBEAT_TAG: u64 = ELASTIC_TAG | (1 << 8);

/// Per-world liveness state for one rank.
#[derive(Debug, Clone)]
pub struct Membership {
    rank: usize,
    world: usize,
    seq: u64,
    /// Highest heartbeat sequence seen from each peer.
    last_seen: Vec<u64>,
    dead: Vec<bool>,
}

impl Membership {
    /// Fresh tracker for `rank` of `world` — everyone presumed alive.
    pub fn new(rank: usize, world: usize) -> Self {
        assert!(rank < world);
        Membership { rank, world, seq: 0, last_seen: vec![0; world], dead: vec![false; world] }
    }

    /// One heartbeat round on `t`: send `seq` to every live peer, drain
    /// every arrived heartbeat, and mark peers whose link errored. Returns
    /// the ranks that died *this* round (each also recorded as an
    /// `elastic/peer_dead` trace instant).
    pub fn beat(&mut self, t: &mut dyn Transport) -> Vec<usize> {
        self.seq += 1;
        let mut newly_dead = Vec::new();
        for peer in 0..self.world {
            if peer == self.rank || self.dead[peer] {
                continue;
            }
            let mut lost =
                t.send_bytes(peer, HEARTBEAT_TAG, PayloadRef::PackedU64(&[self.seq])).is_err();
            while !lost {
                match t.try_recv_bytes(peer, HEARTBEAT_TAG) {
                    Ok(Some(p)) => {
                        if let Some(&s) = p.expect_u64().first() {
                            self.last_seen[peer] = self.last_seen[peer].max(s);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => lost = true,
                }
            }
            if lost {
                self.dead[peer] = true;
                newly_dead.push(peer);
                if a2sgd_trace::enabled() {
                    a2sgd_trace::instant(
                        "elastic/peer_dead",
                        a2sgd_trace::Args::Value(peer as f64),
                    );
                }
            }
        }
        newly_dead
    }

    /// Liveness view, indexed by rank (self is always alive).
    pub fn alive(&self) -> Vec<bool> {
        (0..self.world).map(|r| r == self.rank || !self.dead[r]).collect()
    }

    /// True when `r` has not been declared dead.
    pub fn is_alive(&self, r: usize) -> bool {
        r == self.rank || !self.dead[r]
    }

    /// Highest sequence number received from `r`.
    pub fn last_seen(&self, r: usize) -> u64 {
        self.last_seen[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_comm::transport::InProcShared;

    #[test]
    fn heartbeats_exchange_sequence_numbers() {
        let shared = InProcShared::new(2);
        let mut a = shared.endpoint(0);
        let mut b = shared.endpoint(1);
        let mut ma = Membership::new(0, 2);
        let mut mb = Membership::new(1, 2);
        assert!(ma.beat(&mut a).is_empty());
        assert!(mb.beat(&mut b).is_empty()); // b now saw a's seq 1
        assert!(ma.beat(&mut a).is_empty()); // a now saw b's seq 1
        assert_eq!(mb.last_seen(0), 1);
        assert_eq!(ma.last_seen(1), 1);
        assert!(ma.is_alive(1) && mb.is_alive(0));
    }

    #[test]
    fn a_dropped_peer_is_detected_and_stays_dead() {
        let shared = InProcShared::new(3);
        let mut a = shared.endpoint(0);
        let b = shared.endpoint(1);
        let mut c = shared.endpoint(2);
        let mut ma = Membership::new(0, 3);
        assert!(ma.beat(&mut a).is_empty());
        drop(b);
        assert_eq!(ma.beat(&mut a), vec![1]);
        assert_eq!(ma.alive(), vec![true, false, true]);
        // Already-dead peers are skipped, not re-reported.
        assert!(ma.beat(&mut a).is_empty());
        // The third rank is unaffected.
        let mut mc = Membership::new(2, 3);
        let dead = mc.beat(&mut c);
        assert_eq!(dead, vec![1]);
        assert!(mc.is_alive(0));
    }
}
