//! Process-wide metrics registry: counters, gauges and histograms, gated
//! on the same runtime switch as the span recorder. Snapshots ride the
//! per-process trace file so [`crate::load_dir`] can merge them across
//! ranks (counters and histograms combine; gauges keep the last write).

use crate::json::{self, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Metric flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic sum of integer increments.
    Counter,
    /// Last-write-wins scalar.
    Gauge,
    /// Count/sum/min/max summary of recorded samples.
    Histogram,
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Hist { count: u64, sum: f64, min: f64, max: f64 },
}

/// A snapshotted metric. `value` is the headline number: the counter
/// total, the gauge reading, or the histogram mean.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Registry key.
    pub name: String,
    /// Flavor.
    pub kind: Kind,
    /// Headline value (see type docs).
    pub value: f64,
    /// Sample count (histograms; 0 otherwise).
    pub count: u64,
    /// Sample sum (histograms; 0 otherwise).
    pub sum: f64,
    /// Smallest sample (histograms; 0 otherwise).
    pub min: f64,
    /// Largest sample (histograms; 0 otherwise).
    pub max: f64,
}

fn store() -> &'static Mutex<BTreeMap<String, Slot>> {
    static S: OnceLock<Mutex<BTreeMap<String, Slot>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Adds `n` to the named counter. No-op while tracing is disabled.
pub fn counter_add(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    let mut s = store().lock();
    if let Slot::Counter(c) = s.entry(name.to_owned()).or_insert(Slot::Counter(0)) {
        *c += n;
    }
}

/// Sets the named gauge. No-op while tracing is disabled.
pub fn gauge_set(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    store().lock().insert(name.to_owned(), Slot::Gauge(v));
}

/// Records one histogram sample. No-op while tracing is disabled.
pub fn hist_record(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    let mut s = store().lock();
    if let Slot::Hist { count, sum, min, max } = s.entry(name.to_owned()).or_insert(Slot::Hist {
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    }) {
        *count += 1;
        *sum += v;
        *min = min.min(v);
        *max = max.max(v);
    }
}

fn to_metric(name: &str, slot: &Slot) -> Metric {
    match *slot {
        Slot::Counter(c) => Metric {
            name: name.to_owned(),
            kind: Kind::Counter,
            value: c as f64,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        },
        Slot::Gauge(v) => Metric {
            name: name.to_owned(),
            kind: Kind::Gauge,
            value: v,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        },
        Slot::Hist { count, sum, min, max } => Metric {
            name: name.to_owned(),
            kind: Kind::Histogram,
            value: if count > 0 { sum / count as f64 } else { 0.0 },
            count,
            sum,
            min: if count > 0 { min } else { 0.0 },
            max: if count > 0 { max } else { 0.0 },
        },
    }
}

/// Current registry contents, sorted by name.
pub fn snapshot() -> Vec<Metric> {
    store().lock().iter().map(|(k, v)| to_metric(k, v)).collect()
}

/// Clears the registry.
pub fn reset() {
    store().lock().clear();
}

/// Snapshots the registry as JSONL lines (one metric per line) and clears
/// it — called by [`crate::flush_process_file`].
pub fn drain_lines() -> Vec<String> {
    let mut s = store().lock();
    let lines = s
        .iter()
        .map(|(name, slot)| {
            let m = to_metric(name, slot);
            let mut line = String::from("{\"metric\":");
            let kind = match m.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "hist",
            };
            json::push_str_lit(&mut line, kind);
            line.push_str(",\"name\":");
            json::push_str_lit(&mut line, &m.name);
            let _ = write!(line, ",\"value\":{}", m.value);
            if m.kind == Kind::Histogram {
                let _ = write!(
                    line,
                    ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                    m.count, m.sum, m.min, m.max
                );
            }
            line.push('}');
            line
        })
        .collect();
    s.clear();
    lines
}

/// Parses one JSONL metric line back into a [`Metric`].
pub fn parse_line(obj: &Value) -> Result<Metric, String> {
    let kind = match obj.get("metric").and_then(Value::as_str) {
        Some("counter") => Kind::Counter,
        Some("gauge") => Kind::Gauge,
        Some("hist") => Kind::Histogram,
        other => return Err(format!("bad metric kind {other:?}")),
    };
    let name = obj.get("name").and_then(Value::as_str).ok_or("metric: name")?.to_owned();
    let value = obj.get("value").and_then(Value::as_f64).ok_or("metric: value")?;
    let (count, sum, min, max) = if kind == Kind::Histogram {
        (
            obj.get("count").and_then(Value::as_u64).unwrap_or(0),
            obj.get("sum").and_then(Value::as_f64).unwrap_or(0.0),
            obj.get("min").and_then(Value::as_f64).unwrap_or(0.0),
            obj.get("max").and_then(Value::as_f64).unwrap_or(0.0),
        )
    } else {
        (0, 0.0, 0.0, 0.0)
    };
    Ok(Metric { name, kind, value, count, sum, min, max })
}

/// Folds `incoming` (one process's snapshot) into `acc`: counters and
/// histograms combine, gauges keep the last file's reading.
pub fn merge_into(acc: &mut Vec<Metric>, incoming: Vec<Metric>) {
    for m in incoming {
        match acc.iter_mut().find(|a| a.name == m.name && a.kind == m.kind) {
            None => acc.push(m),
            Some(a) => match m.kind {
                Kind::Counter => a.value += m.value,
                Kind::Gauge => a.value = m.value,
                Kind::Histogram => {
                    a.min = if a.count == 0 { m.min } else { a.min.min(m.min) };
                    a.max = if a.count == 0 { m.max } else { a.max.max(m.max) };
                    a.count += m.count;
                    a.sum += m.sum;
                    a.value = if a.count > 0 { a.sum / a.count as f64 } else { 0.0 };
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_combines_counters_and_hists() {
        let mut acc = vec![Metric {
            name: "frames".into(),
            kind: Kind::Counter,
            value: 3.0,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }];
        merge_into(
            &mut acc,
            vec![
                Metric {
                    name: "frames".into(),
                    kind: Kind::Counter,
                    value: 4.0,
                    count: 0,
                    sum: 0.0,
                    min: 0.0,
                    max: 0.0,
                },
                Metric {
                    name: "lat".into(),
                    kind: Kind::Histogram,
                    value: 2.0,
                    count: 2,
                    sum: 4.0,
                    min: 1.0,
                    max: 3.0,
                },
            ],
        );
        merge_into(
            &mut acc,
            vec![Metric {
                name: "lat".into(),
                kind: Kind::Histogram,
                value: 5.0,
                count: 1,
                sum: 5.0,
                min: 5.0,
                max: 5.0,
            }],
        );
        assert_eq!(acc.iter().find(|m| m.name == "frames").unwrap().value, 7.0);
        let lat = acc.iter().find(|m| m.name == "lat").unwrap();
        assert_eq!((lat.count, lat.sum, lat.min, lat.max), (3, 9.0, 1.0, 5.0));
        assert!((lat.value - 3.0).abs() < 1e-12);
    }
}
