//! Minimal JSON codec for trace files — the environment is offline, so no
//! serde. The writer emits only flat objects with controlled keys; the
//! parser is a full recursive-descent JSON reader used both to load trace
//! lines back and to validate the merged Chrome trace.
//!
//! Numbers keep their source text: wire tags are `u64` values with bit 63
//! set, which an `f64` mantissa cannot represent, so [`Value::Num`] stores
//! the literal and [`Value::as_u64`]/[`Value::as_f64`] parse on demand.

use crate::{Args, Event, Ph};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its source text (see module docs).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Integer view of a number (exact for u64-range integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Float view of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object-key lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

/// Checks that `text` is well-formed JSON.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key is not a string at offset {}", *pos)),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                }
            }
        }
        b'"' => parse_string(b, pos).map(Value::Str),
        b't' => parse_lit(b, pos, "true").map(|()| Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false").map(|()| Value::Bool(false)),
        b'n' => parse_lit(b, pos, "null").map(|()| Value::Null),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(format!("unexpected byte '{}' at offset {}", other as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac = *pos;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp = *pos;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(Value::Num(String::from_utf8_lossy(&b[start..*pos]).into_owned()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at c.
                let width = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let end = (*pos - 1 + width).min(b.len());
                let s = std::str::from_utf8(&b[*pos - 1..end])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn ph_letter(ph: Ph) -> &'static str {
    match ph {
        Ph::SpanBegin => "B",
        Ph::SpanEnd => "E",
        Ph::Instant => "i",
        Ph::FlowOut => "s",
        Ph::FlowIn => "f",
        Ph::AsyncBegin => "b",
        Ph::AsyncEnd => "e",
        Ph::Counter => "C",
    }
}

fn ph_from_letter(s: &str) -> Option<Ph> {
    Some(match s {
        "B" => Ph::SpanBegin,
        "E" => Ph::SpanEnd,
        "i" => Ph::Instant,
        "s" => Ph::FlowOut,
        "f" => Ph::FlowIn,
        "b" => Ph::AsyncBegin,
        "e" => Ph::AsyncEnd,
        "C" => Ph::Counter,
        _ => return None,
    })
}

/// Serializes one event as a single flat JSONL line (newline included).
pub fn write_event_line(out: &mut String, ev: &Event) {
    let _ = write!(out, "{{\"ph\":\"{}\",\"t\":{}", ph_letter(ev.ph), ev.t_ns);
    if !ev.name.is_empty() {
        out.push_str(",\"n\":");
        push_str_lit(out, ev.name);
    }
    if ev.id != 0 {
        let _ = write!(out, ",\"id\":{}", ev.id);
    }
    match ev.args {
        Args::None => {}
        Args::Wire { from, to, tag, bytes } => {
            let _ = write!(
                out,
                ",\"a\":\"w\",\"from\":{from},\"to\":{to},\"tag\":{tag},\"bytes\":{bytes}"
            );
        }
        Args::Collective { op, plane, bytes } => {
            out.push_str(",\"a\":\"c\",\"op\":");
            push_str_lit(out, op);
            out.push_str(",\"plane\":");
            push_str_lit(out, plane);
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        Args::Bucket { bucket, bytes } => {
            let _ = write!(out, ",\"a\":\"k\",\"bucket\":{bucket},\"bytes\":{bytes}");
        }
        Args::Value(v) => {
            let _ = write!(out, ",\"a\":\"v\",\"value\":{v}");
        }
        Args::Plane { space, plane } => {
            let _ = write!(out, ",\"a\":\"p\",\"space\":{space},\"plane\":");
            push_str_lit(out, plane);
        }
    }
    out.push_str("}\n");
}

/// Interns a string so parsed events can use `&'static str` names like the
/// live recorder does. The name set is small and closed, so the leak is
/// bounded.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut pool = POOL.get_or_init(|| Mutex::new(HashMap::new())).lock();
    if let Some(v) = pool.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(s.to_owned(), leaked);
    leaked
}

/// Parses one flat JSONL event line written by [`write_event_line`].
pub fn parse_event_line(obj: &Value) -> Result<Event, String> {
    let ph =
        obj.get("ph").and_then(Value::as_str).and_then(ph_from_letter).ok_or("missing/bad ph")?;
    let t_ns = obj.get("t").and_then(Value::as_u64).ok_or("missing t")?;
    let name = obj.get("n").and_then(Value::as_str).map(intern).unwrap_or("");
    let id = obj.get("id").and_then(Value::as_u64).unwrap_or(0);
    let args = match obj.get("a").and_then(Value::as_str) {
        None => Args::None,
        Some("w") => Args::Wire {
            from: obj.get("from").and_then(Value::as_u64).ok_or("wire: from")? as usize,
            to: obj.get("to").and_then(Value::as_u64).ok_or("wire: to")? as usize,
            tag: obj.get("tag").and_then(Value::as_u64).ok_or("wire: tag")?,
            bytes: obj.get("bytes").and_then(Value::as_u64).ok_or("wire: bytes")?,
        },
        Some("c") => Args::Collective {
            op: obj.get("op").and_then(Value::as_str).map(intern).ok_or("collective: op")?,
            plane: obj
                .get("plane")
                .and_then(Value::as_str)
                .map(intern)
                .ok_or("collective: plane")?,
            bytes: obj.get("bytes").and_then(Value::as_u64).ok_or("collective: bytes")?,
        },
        Some("k") => Args::Bucket {
            bucket: obj.get("bucket").and_then(Value::as_u64).ok_or("bucket: bucket")? as usize,
            bytes: obj.get("bytes").and_then(Value::as_u64).ok_or("bucket: bytes")?,
        },
        Some("v") => Args::Value(obj.get("value").and_then(Value::as_f64).ok_or("value")?),
        Some("p") => Args::Plane {
            space: obj.get("space").and_then(Value::as_u64).ok_or("plane: space")?,
            plane: obj.get("plane").and_then(Value::as_str).map(intern).ok_or("plane: plane")?,
        },
        Some(other) => return Err(format!("unknown arg kind {other:?}")),
    };
    Ok(Event { ph, t_ns, name, id, args })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_keep_u64_precision() {
        let tag: u64 = (1 << 63) | (57 << 8) | 3;
        let v = parse(&format!("{{\"tag\":{tag}}}")).unwrap();
        assert_eq!(v.get("tag").unwrap().as_u64(), Some(tag));
    }

    #[test]
    fn event_lines_round_trip() {
        let evs = [
            Event {
                ph: Ph::SpanBegin,
                t_ns: 12345,
                name: "send",
                id: 0,
                args: Args::Wire { from: 2, to: 0, tag: (1 << 63) | 777, bytes: 4096 },
            },
            Event { ph: Ph::SpanEnd, t_ns: 12999, name: "", id: 0, args: Args::None },
            Event { ph: Ph::FlowIn, t_ns: 13000, name: "msg", id: 0xdead_beef, args: Args::None },
            Event {
                ph: Ph::AsyncBegin,
                t_ns: 14000,
                name: "nb/allreduce",
                id: 9,
                args: Args::Collective { op: "allreduce", plane: "intra", bytes: 512 },
            },
            Event { ph: Ph::Instant, t_ns: 15000, name: "v", id: 0, args: Args::Value(0.5) },
            Event {
                ph: Ph::Instant,
                t_ns: 15500,
                name: "plane_map",
                id: 0,
                args: Args::Plane { space: 33, plane: "inter" },
            },
        ];
        for ev in &evs {
            let mut line = String::new();
            write_event_line(&mut line, ev);
            let obj = parse(line.trim_end()).unwrap();
            let back = parse_event_line(&obj).unwrap();
            assert_eq!(back.ph, ev.ph);
            assert_eq!(back.t_ns, ev.t_ns);
            assert_eq!(back.name, ev.name);
            assert_eq!(back.id, ev.id);
            assert_eq!(back.args, ev.args);
        }
    }

    #[test]
    fn validator_accepts_nested_and_rejects_garbage() {
        validate("{\"a\":[1,2.5,{\"b\":null},true,\"x\\n\"]}").unwrap();
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,2,]").is_err());
        assert!(validate("{} extra").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\\c\nd\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
