//! Loading per-process JSONL trace files back, aligning their clocks, and
//! emitting one merged Chrome trace-event JSON document.
//!
//! Each rank records a `sync_point` instant immediately after a barrier,
//! so every rank's sync point denotes (approximately) the same wall
//! moment. Monotonic clocks differ per *process*, so the merger shifts
//! each file — not each thread — so the sync points coincide, then
//! normalizes the merged timeline to start at zero. In-process thread
//! ranks share one file and therefore one clock; their shift is common,
//! which is exactly right.

use crate::json::{self, Value};
use crate::metrics::{self, Metric};
use crate::{Args, Event, Ph};
use std::fmt::Write as _;
use std::path::Path;

/// One thread's aligned event stream.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Chrome process id: the rank when known, else `9000 + file index`.
    pub pid: u64,
    /// Thread id, unique within its source process.
    pub tid: u64,
    /// The rank this thread drove, when it declared one.
    pub rank: Option<usize>,
    /// Thread name from the source process.
    pub name: String,
    /// Events with clock-aligned, zero-based `t_ns`.
    pub events: Vec<Event>,
}

/// A merged multi-process trace.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// All threads from all per-process files.
    pub threads: Vec<ThreadTrace>,
    /// Merged metrics registry (counters/histograms combined across
    /// processes, gauges last-write-wins).
    pub metrics: Vec<Metric>,
    /// Total events dropped to ring-buffer overflow, across processes.
    /// Non-zero means flow-matching audits may see unmatched ends.
    pub dropped: u64,
}

struct FileTrace {
    threads: Vec<ThreadTrace>,
    metrics: Vec<Metric>,
    dropped: u64,
}

fn load_file(path: &Path, file_idx: usize) -> Result<FileTrace, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    let mut out = FileTrace { threads: Vec::new(), metrics: Vec::new(), dropped: 0 };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj =
            json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        if let Some(meta) = obj.get("meta").and_then(Value::as_str) {
            match meta {
                "process" => {
                    out.dropped += obj.get("dropped").and_then(Value::as_u64).unwrap_or(0);
                }
                "thread" => {
                    let tid = obj.get("tid").and_then(Value::as_u64).unwrap_or(0);
                    let rank = obj.get("rank").and_then(Value::as_u64).map(|r| r as usize);
                    let name =
                        obj.get("name").and_then(Value::as_str).unwrap_or("thread").to_owned();
                    let pid = rank.map(|r| r as u64).unwrap_or(9000 + file_idx as u64);
                    out.threads.push(ThreadTrace { pid, tid, rank, name, events: Vec::new() });
                }
                other => return Err(format!("{}: unknown meta {other:?}", path.display())),
            }
        } else if obj.get("metric").is_some() {
            out.metrics.push(
                metrics::parse_line(&obj)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?,
            );
        } else {
            let ev = json::parse_event_line(&obj)
                .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
            out.threads
                .last_mut()
                .ok_or_else(|| format!("{}: event before any thread header", path.display()))?
                .events
                .push(ev);
        }
    }
    Ok(out)
}

fn file_sync_point(f: &FileTrace) -> Option<u64> {
    f.threads
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.ph == Ph::Instant && e.name == "sync_point")
        .map(|e| e.t_ns)
        .min()
}

/// Reads every `trace-*.jsonl` file in `dir`, aligns per-process clocks on
/// the `sync_point` instants, and returns the merged, zero-based trace.
pub fn load_dir(dir: &Path) -> Result<TraceData, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trace-") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no trace-*.jsonl files", dir.display()));
    }
    let mut files = Vec::new();
    for (idx, p) in paths.iter().enumerate() {
        files.push(load_file(p, idx)?);
    }

    // The reference clock: the file that hosted rank 0, else the first.
    let ref_idx =
        files.iter().position(|f| f.threads.iter().any(|t| t.rank == Some(0))).unwrap_or(0);
    let ref_sync = file_sync_point(&files[ref_idx]);

    let mut data = TraceData { threads: Vec::new(), metrics: Vec::new(), dropped: 0 };
    for f in &mut files {
        let shift = match (ref_sync, file_sync_point(f)) {
            (Some(r), Some(s)) => r as i64 - s as i64,
            _ => 0,
        };
        for t in &mut f.threads {
            for ev in &mut t.events {
                ev.t_ns = (ev.t_ns as i64 + shift).max(i64::MIN + 1) as u64;
            }
        }
        data.dropped += f.dropped;
        metrics::merge_into(&mut data.metrics, std::mem::take(&mut f.metrics));
        data.threads.append(&mut f.threads);
    }

    // Normalize so the merged timeline starts at zero. Shifts can push
    // early events "negative" (stored as wrapped u64), so min over i64.
    let min_t =
        data.threads.iter().flat_map(|t| t.events.iter()).map(|e| e.t_ns as i64).min().unwrap_or(0);
    for t in &mut data.threads {
        for ev in &mut t.events {
            ev.t_ns = (ev.t_ns as i64 - min_t) as u64;
        }
    }
    Ok(data)
}

fn push_ts(out: &mut String, t_ns: u64) {
    // Chrome wants microseconds; keep nanosecond precision as decimals.
    let _ = write!(out, "{}.{:03}", t_ns / 1000, t_ns % 1000);
}

fn push_args_obj(out: &mut String, args: &Args) {
    out.push_str("\"args\":{");
    match *args {
        Args::None => {}
        Args::Wire { from, to, tag, bytes } => {
            let _ = write!(out, "\"from\":{from},\"to\":{to},\"tag\":{tag},\"bytes\":{bytes}");
        }
        Args::Collective { op, plane, bytes } => {
            out.push_str("\"op\":");
            json::push_str_lit(out, op);
            out.push_str(",\"plane\":");
            json::push_str_lit(out, plane);
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        Args::Bucket { bucket, bytes } => {
            let _ = write!(out, "\"bucket\":{bucket},\"bytes\":{bytes}");
        }
        Args::Value(v) => {
            let _ = write!(out, "\"value\":{v}");
        }
        Args::Plane { space, plane } => {
            let _ = write!(out, "\"space\":{space},\"plane\":");
            json::push_str_lit(out, plane);
        }
    }
    out.push('}');
}

/// Renders the merged trace as a Chrome trace-event JSON document —
/// `chrome://tracing` / Perfetto compatible: ranks as processes, spans as
/// slices, transport frames as flow arrows, nonblocking collectives as
/// nestable async events.
pub fn chrome_trace_json(data: &TraceData) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    let mut seen_pids: Vec<u64> = Vec::new();
    for t in &data.threads {
        if !seen_pids.contains(&t.pid) {
            seen_pids.push(t.pid);
            let pname = match t.rank {
                Some(r) => format!("rank {r}"),
                None => format!("aux {}", t.pid),
            };
            push_sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":",
                t.pid
            );
            json::push_str_lit(&mut out, &pname);
            out.push_str("}}");
            push_sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{}}}}}",
                t.pid, t.pid
            );
        }
        push_sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
            t.pid, t.tid
        );
        json::push_str_lit(&mut out, if t.name.is_empty() { "thread" } else { &t.name });
        out.push_str("}}");
    }

    for t in &data.threads {
        for ev in &t.events {
            push_sep(&mut out);
            out.push('{');
            let common = |out: &mut String, ph: &str| {
                let _ = write!(out, "\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"ts\":", t.pid, t.tid);
                push_ts(out, ev.t_ns);
            };
            match ev.ph {
                Ph::SpanBegin => {
                    common(&mut out, "B");
                    out.push_str(",\"name\":");
                    json::push_str_lit(&mut out, ev.name);
                    out.push(',');
                    push_args_obj(&mut out, &ev.args);
                }
                Ph::SpanEnd => {
                    common(&mut out, "E");
                }
                Ph::Instant => {
                    common(&mut out, "i");
                    out.push_str(",\"s\":\"t\",\"name\":");
                    json::push_str_lit(&mut out, ev.name);
                    out.push(',');
                    push_args_obj(&mut out, &ev.args);
                }
                Ph::FlowOut | Ph::FlowIn => {
                    common(&mut out, if ev.ph == Ph::FlowOut { "s" } else { "f" });
                    if ev.ph == Ph::FlowIn {
                        out.push_str(",\"bp\":\"e\"");
                    }
                    let _ =
                        write!(out, ",\"cat\":\"flow\",\"name\":\"msg\",\"id\":\"{:016x}\"", ev.id);
                }
                Ph::AsyncBegin | Ph::AsyncEnd => {
                    common(&mut out, if ev.ph == Ph::AsyncBegin { "b" } else { "e" });
                    out.push_str(",\"cat\":\"nb\",\"name\":");
                    json::push_str_lit(&mut out, ev.name);
                    // Async ids are per-communicator; bake the pid in so
                    // two ranks' lifetimes never merge in the viewer.
                    let _ = write!(out, ",\"id\":\"p{}/{:x}\"", t.pid, ev.id);
                    if ev.ph == Ph::AsyncBegin {
                        out.push(',');
                        push_args_obj(&mut out, &ev.args);
                    }
                }
                Ph::Counter => {
                    common(&mut out, "C");
                    out.push_str(",\"name\":");
                    json::push_str_lit(&mut out, ev.name);
                    let v = match ev.args {
                        Args::Value(v) => v,
                        _ => 0.0,
                    };
                    let _ = write!(out, ",\"args\":{{\"value\":{v}}}");
                }
            }
            out.push('}');
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Convenience: [`load_dir`] then [`chrome_trace_json`].
pub fn merge_dir(dir: &Path) -> Result<String, String> {
    load_dir(dir).map(|d| chrome_trace_json(&d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn write_fake_file(dir: &Path, pid: u32, rank: usize, sync_ns: u64, extra: &[Event]) {
        let mut out = String::new();
        out.push_str(&format!("{{\"meta\":\"process\",\"pid\":{pid},\"dropped\":0}}\n"));
        out.push_str(&format!(
            "{{\"meta\":\"thread\",\"tid\":0,\"rank\":{rank},\"name\":\"r{rank}\"}}\n"
        ));
        json::write_event_line(
            &mut out,
            &Event { ph: Ph::Instant, t_ns: sync_ns, name: "sync_point", id: 0, args: Args::None },
        );
        for ev in extra {
            json::write_event_line(&mut out, ev);
        }
        std::fs::write(dir.join(format!("trace-{pid}.jsonl")), out).unwrap();
    }

    fn tmp(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("a2sgd_trace_merge_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clocks_align_on_sync_points() {
        let d = tmp("align");
        // Rank 0's clock reads 1_000 at the barrier; rank 1's reads
        // 501_000. Each records an instant exactly 2µs after its sync.
        let mk = |sync: u64| {
            vec![Event {
                ph: Ph::Instant,
                t_ns: sync + 2_000,
                name: "after",
                id: 0,
                args: Args::None,
            }]
        };
        write_fake_file(&d, 11, 0, 1_000, &mk(1_000));
        write_fake_file(&d, 22, 1, 501_000, &mk(501_000));
        let data = load_dir(&d).unwrap();
        let after: Vec<u64> = data
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.name == "after")
            .map(|e| e.t_ns)
            .collect();
        assert_eq!(after.len(), 2);
        assert_eq!(after[0], after[1], "aligned instants coincide");
        let min = data.threads.iter().flat_map(|t| t.events.iter()).map(|e| e.t_ns).min().unwrap();
        assert_eq!(min, 0, "timeline is normalized to start at zero");
    }

    #[test]
    fn ranks_become_chrome_processes() {
        let d = tmp("pids");
        write_fake_file(&d, 31, 0, 10, &[]);
        write_fake_file(&d, 32, 1, 10, &[]);
        let data = load_dir(&d).unwrap();
        let mut pids: Vec<u64> = data.threads.iter().map(|t| t.pid).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![0, 1], "pid = rank regardless of OS pid");
        let js = chrome_trace_json(&data);
        json::validate(&js).unwrap();
        assert!(js.contains("\"rank 0\"") && js.contains("\"rank 1\""));
    }

    #[test]
    fn flows_and_asyncs_survive_to_chrome_json() {
        let d = tmp("flows");
        let id = crate::flow_id(0, 1, 77);
        write_fake_file(
            &d,
            41,
            0,
            5,
            &[
                Event { ph: Ph::SpanBegin, t_ns: 10, name: "send", id: 0, args: Args::None },
                Event { ph: Ph::FlowOut, t_ns: 12, name: "msg", id, args: Args::None },
                Event { ph: Ph::SpanEnd, t_ns: 12, name: "", id: 0, args: Args::None },
                Event {
                    ph: Ph::AsyncBegin,
                    t_ns: 20,
                    name: "nb/allreduce",
                    id: 3,
                    args: Args::Collective { op: "allreduce", plane: "world", bytes: 8 },
                },
                Event { ph: Ph::AsyncEnd, t_ns: 30, name: "nb/allreduce", id: 3, args: Args::None },
            ],
        );
        write_fake_file(
            &d,
            42,
            1,
            5,
            &[
                Event { ph: Ph::SpanBegin, t_ns: 15, name: "recv", id: 0, args: Args::None },
                Event { ph: Ph::FlowIn, t_ns: 18, name: "msg", id, args: Args::None },
                Event { ph: Ph::SpanEnd, t_ns: 18, name: "", id: 0, args: Args::None },
            ],
        );
        let data = load_dir(&d).unwrap();
        let js = chrome_trace_json(&data);
        json::validate(&js).unwrap();
        let flow_id_str = format!("{id:016x}");
        assert_eq!(js.matches(&flow_id_str).count(), 2, "send and recv share the flow id");
        assert!(
            js.contains("\"ph\":\"s\"")
                && js.contains("\"ph\":\"f\"")
                && js.contains("\"bp\":\"e\"")
        );
        assert!(js.contains("\"p0/3\""), "async id is namespaced by pid");
    }
}
