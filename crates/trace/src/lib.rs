//! Cross-layer tracing: a low-overhead, runtime-gated span/event recorder
//! plus a counter/gauge/histogram metrics registry.
//!
//! Recording is off by default; every record call starts with one relaxed
//! atomic load, so instrumented hot paths (transport sends, per-bucket
//! submits) cost ~nothing when tracing is disabled. When enabled — via
//! [`enable`] or the `A2SGD_TRACE=<dir>` environment variable
//! ([`init_from_env`]) — events land in bounded thread-local ring buffers
//! stamped with monotonic nanoseconds from a process-wide epoch.
//!
//! Each rank *process* writes one JSONL file ([`flush_process_file`]);
//! in-process thread ranks share a file, with one thread section per rank.
//! [`load_dir`] reads every per-process file back, aligns the clocks on
//! the per-rank `sync_point` instants (recorded right after a barrier, so
//! they denote the same wall moment on every rank), and
//! [`chrome_trace_json`] renders the merged timeline as Chrome trace-event
//! JSON loadable in Perfetto: ranks as processes, spans as slices, sends
//! linked to their matching receives as flow arrows, and nonblocking
//! collective lifetimes as async events.
//!
//! The JSON codec is hand-rolled (the build environment is offline — no
//! serde): the writer emits only flat objects with controlled key names,
//! and the reader parses exactly that shape.

use parking_lot::Mutex;
use std::cell::OnceCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

pub mod json;
pub mod merge;
pub mod metrics;

pub use merge::{chrome_trace_json, load_dir, merge_dir, ThreadTrace, TraceData};

/// Per-thread event capacity; overflow increments a drop counter instead
/// of growing without bound.
const RING_CAP: usize = 1 << 20;

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ph {
    /// Duration-slice begin (`B`).
    SpanBegin,
    /// Duration-slice end (`E`).
    SpanEnd,
    /// Instant (`i`).
    Instant,
    /// Flow start (`s`) — binds to the enclosing slice.
    FlowOut,
    /// Flow finish (`f`) — binds to the enclosing slice.
    FlowIn,
    /// Async (nestable) begin (`b`), keyed by `id`.
    AsyncBegin,
    /// Async (nestable) end (`e`), keyed by `id`.
    AsyncEnd,
    /// Counter sample (`C`).
    Counter,
}

/// Typed event arguments — a small closed set instead of a string map, so
/// recording never allocates beyond the event itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Args {
    /// No arguments.
    None,
    /// A transport-level frame: root-absolute endpoints, full (spaced)
    /// tag, and the bytes the transport reported moving.
    Wire {
        /// Sending root-absolute rank.
        from: usize,
        /// Receiving root-absolute rank.
        to: usize,
        /// The full wire tag (tag-space bits included).
        tag: u64,
        /// Wire bytes (payload + framing as the transport reports them).
        bytes: u64,
    },
    /// A collective call on a communicator.
    Collective {
        /// Operation name (`allreduce`, `allgather`, …).
        op: &'static str,
        /// The communicator's plane label (`world`/`intra`/`inter`).
        plane: &'static str,
        /// Payload bytes of this rank's own contribution.
        bytes: u64,
    },
    /// A bucketed-session event.
    Bucket {
        /// Bucket index within the step's partition.
        bucket: usize,
        /// Bucket payload bytes.
        bytes: u64,
    },
    /// A bare numeric value (audit instants, counters).
    Value(f64),
    /// A tag-space → plane-label mapping announcement.
    Plane {
        /// The communicator's tag space (bits 48..63 of its tags).
        space: u64,
        /// The plane label.
        plane: &'static str,
    },
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Phase.
    pub ph: Ph,
    /// Nanoseconds since the process trace epoch (aligned across
    /// processes after [`load_dir`]).
    pub t_ns: u64,
    /// Event name.
    pub name: &'static str,
    /// Flow/async correlation id (0 when unused).
    pub id: u64,
    /// Typed arguments.
    pub args: Args,
}

struct ThreadBuf {
    events: Vec<Event>,
    dropped: u64,
    rank: Option<usize>,
    tid: u64,
    name: String,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    static R: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn out_dir() -> &'static Mutex<Option<PathBuf>> {
    static D: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    D.get_or_init(|| Mutex::new(None))
}

fn epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: OnceCell<Arc<Mutex<ThreadBuf>>> = const { OnceCell::new() };
}

fn with_local<R>(f: impl FnOnce(&mut ThreadBuf) -> R) -> R {
    LOCAL.with(|cell| {
        let arc = cell.get_or_init(|| {
            let name: String = std::thread::current()
                .name()
                .unwrap_or("thread")
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || "_.:-".contains(*c))
                .collect();
            let buf = Arc::new(Mutex::new(ThreadBuf {
                events: Vec::new(),
                dropped: 0,
                rank: None,
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                name,
            }));
            registry().lock().push(buf.clone());
            buf
        });
        f(&mut arc.lock())
    })
}

/// Whether recording is currently on — one relaxed load, the cost every
/// instrumented call site pays when tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on and directs [`flush_process_file`] to `dir`
/// (created if missing). Also pins the process trace epoch.
pub fn enable(dir: &Path) {
    let _ = std::fs::create_dir_all(dir);
    *out_dir().lock() = Some(dir.to_path_buf());
    let _ = epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off (buffers are kept until [`flush_process_file`] or
/// [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Enables tracing when `A2SGD_TRACE=<dir>` is set; returns whether it is
/// now on. TCP rank processes inherit the variable from their launcher, so
/// a traced multi-process run needs no per-child plumbing.
pub fn init_from_env() -> bool {
    match std::env::var("A2SGD_TRACE") {
        Ok(dir) if !dir.is_empty() => {
            enable(Path::new(&dir));
            true
        }
        _ => enabled(),
    }
}

/// Drops all buffered events, metrics and drop counts (test isolation).
pub fn reset() {
    for buf in registry().lock().iter() {
        let mut b = buf.lock();
        b.events.clear();
        b.dropped = 0;
        b.rank = None;
    }
    metrics::reset();
}

/// Monotonic nanoseconds since the trace epoch; 0 when disabled (callers
/// always pair a `now_ns` with a later record call that is itself gated).
#[inline]
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    epoch().elapsed().as_nanos() as u64
}

#[inline]
fn record(ev: Event) {
    if !enabled() {
        return;
    }
    with_local(|b| {
        if b.events.len() < RING_CAP {
            b.events.push(ev);
        } else {
            b.dropped += 1;
        }
    });
}

/// Tags the calling thread's buffer with its rank — the merger turns each
/// rank into a Chrome process. No-op while disabled.
pub fn set_thread_rank(rank: usize) {
    if !enabled() {
        return;
    }
    with_local(|b| b.rank = Some(rank));
}

/// Records the clock-alignment instant. Call immediately after a barrier:
/// every rank's `sync_point` then denotes (approximately) the same wall
/// moment, which is what lets [`load_dir`] shift per-process clocks onto
/// one timeline.
pub fn mark_sync_point() {
    instant("sync_point", Args::None);
}

/// RAII span: records `B` at construction, `E` on drop.
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(Event { ph: Ph::SpanEnd, t_ns: now_ns(), name: "", id: 0, args: Args::None });
        }
    }
}

/// Opens a span on the calling thread; the returned guard closes it.
pub fn span(name: &'static str, args: Args) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    record(Event { ph: Ph::SpanBegin, t_ns: now_ns(), name, id: 0, args });
    SpanGuard { armed: true }
}

/// Records an already-elapsed span: `B` at `t0_ns` (a prior [`now_ns`]
/// reading), `E` now. No-op when disabled.
pub fn closed_span(name: &'static str, t0_ns: u64, args: Args) {
    if !enabled() {
        return;
    }
    record(Event { ph: Ph::SpanBegin, t_ns: t0_ns, name, id: 0, args });
    record(Event { ph: Ph::SpanEnd, t_ns: now_ns(), name: "", id: 0, args: Args::None });
}

/// Records an already-elapsed span carrying a flow endpoint: the flow
/// event sits just inside the slice so Chrome/Perfetto bind the arrow to
/// it. `out` chooses flow-start (send side) vs flow-finish (receive side).
pub fn closed_span_flow(name: &'static str, t0_ns: u64, args: Args, flow_id: u64, out: bool) {
    if !enabled() {
        return;
    }
    let t1 = now_ns();
    record(Event { ph: Ph::SpanBegin, t_ns: t0_ns, name, id: 0, args });
    let ph = if out { Ph::FlowOut } else { Ph::FlowIn };
    record(Event { ph, t_ns: t1, name: "msg", id: flow_id, args: Args::None });
    record(Event { ph: Ph::SpanEnd, t_ns: t1, name: "", id: 0, args: Args::None });
}

/// Records an instant event.
pub fn instant(name: &'static str, args: Args) {
    record(Event { ph: Ph::Instant, t_ns: now_ns(), name, id: 0, args });
}

/// Opens an async (lifetime) event keyed by `id` — nonblocking collective
/// launches. Close with [`async_end`] using the same name and id.
pub fn async_begin(name: &'static str, id: u64, args: Args) {
    record(Event { ph: Ph::AsyncBegin, t_ns: now_ns(), name, id, args });
}

/// Closes an async event opened by [`async_begin`].
pub fn async_end(name: &'static str, id: u64) {
    record(Event { ph: Ph::AsyncEnd, t_ns: now_ns(), name, id, args: Args::None });
}

/// Records a fully-elapsed async event from two prior [`now_ns`] readings
/// — the per-bucket in-flight window, whose begin is only known to have
/// mattered once the drain starts.
pub fn async_span_at(name: &'static str, id: u64, t0_ns: u64, t1_ns: u64, args: Args) {
    if !enabled() {
        return;
    }
    record(Event { ph: Ph::AsyncBegin, t_ns: t0_ns, name, id, args });
    record(Event { ph: Ph::AsyncEnd, t_ns: t1_ns, name, id, args: Args::None });
}

/// Records a counter sample.
pub fn counter(name: &'static str, value: f64) {
    record(Event { ph: Ph::Counter, t_ns: now_ns(), name, id: 0, args: Args::Value(value) });
}

/// FNV-1a over three words — the flow id tying a frame's send span to its
/// matching receive span: hash (root-absolute from, to, full wire tag).
/// Tag spaces and per-op tag sequencing make the triple unique per frame.
pub fn flow_id(a: u64, b: u64, c: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in [a, b, c] {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Writes (and drains) every thread buffer plus the metrics snapshot into
/// `<dir>/trace-<pid>.jsonl`, one file per rank process. Returns the path,
/// or `None` when no output directory was configured. Thread sections keep
/// their rank tags, so in-process thread ranks merge exactly like forked
/// rank processes.
pub fn flush_process_file() -> Option<PathBuf> {
    let dir = out_dir().lock().clone()?;
    let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
    let mut out = String::new();
    let mut total_dropped = 0u64;
    let mut sections: Vec<(u64, Option<usize>, String, Vec<Event>)> = Vec::new();
    for buf in registry().lock().iter() {
        let mut b = buf.lock();
        total_dropped += b.dropped;
        let events = std::mem::take(&mut b.events);
        if events.is_empty() {
            continue;
        }
        sections.push((b.tid, b.rank, b.name.clone(), events));
    }
    out.push_str(&format!(
        "{{\"meta\":\"process\",\"pid\":{},\"dropped\":{}}}\n",
        std::process::id(),
        total_dropped
    ));
    for (tid, rank, name, events) in &sections {
        out.push_str(&format!("{{\"meta\":\"thread\",\"tid\":{tid}"));
        if let Some(r) = rank {
            out.push_str(&format!(",\"rank\":{r}"));
        }
        out.push_str(&format!(",\"name\":\"{name}\"}}\n"));
        for ev in events {
            json::write_event_line(&mut out, ev);
        }
    }
    for line in metrics::drain_lines() {
        out.push_str(&line);
        out.push('\n');
    }
    std::fs::write(&path, out).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("a2sgd_trace_unit_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    // Unit tests share the process-global recorder: serialize them.
    fn lock() -> parking_lot::MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        L.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = lock();
        disable();
        reset();
        let before = now_ns();
        assert_eq!(before, 0, "disabled clock reads cost nothing and return 0");
        instant("never", Args::None);
        {
            let _s = span("never", Args::None);
        }
        let d = tmp("disabled");
        enable(&d);
        let path = flush_process_file().expect("dir configured");
        disable();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(!text.contains("never"), "no events recorded while disabled");
        reset();
    }

    #[test]
    fn roundtrip_through_file_and_loader() {
        let _g = lock();
        let d = tmp("roundtrip");
        reset();
        enable(&d);
        set_thread_rank(3);
        mark_sync_point();
        {
            let _s = span("outer", Args::Collective { op: "allreduce", plane: "world", bytes: 64 });
            instant("inner", Args::Wire { from: 0, to: 1, tag: 1 << 63, bytes: 16 });
        }
        async_span_at(
            "bucket/inflight",
            7,
            now_ns(),
            now_ns(),
            Args::Bucket { bucket: 7, bytes: 4 },
        );
        metrics::counter_add("frames", 2);
        flush_process_file().unwrap();
        disable();
        let data = load_dir(&d).unwrap();
        let th = data.threads.iter().find(|t| t.rank == Some(3)).expect("ranked thread");
        let names: Vec<&str> = th.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"sync_point") && names.contains(&"outer"));
        let wire = th
            .events
            .iter()
            .find(|e| matches!(e.args, Args::Wire { .. }))
            .expect("wire args survive");
        assert_eq!(wire.args, Args::Wire { from: 0, to: 1, tag: 1 << 63, bytes: 16 });
        assert_eq!(
            data.metrics.iter().find(|m| m.name == "frames").map(|m| m.value),
            Some(2.0),
            "metrics snapshot rides the same file"
        );
        let js = chrome_trace_json(&data);
        json::validate(&js).expect("merged trace is well-formed JSON");
        assert!(js.contains("\"traceEvents\""));
        reset();
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let _g = lock();
        let d = tmp("overflow");
        reset();
        enable(&d);
        with_local(|b| {
            b.events.clear();
            for _ in 0..RING_CAP {
                b.events.push(Event {
                    ph: Ph::Instant,
                    t_ns: 0,
                    name: "fill",
                    id: 0,
                    args: Args::None,
                });
            }
        });
        instant("overflowing", Args::None);
        with_local(|b| {
            assert_eq!(b.events.len(), RING_CAP);
            assert_eq!(b.dropped, 1);
        });
        disable();
        reset();
    }

    #[test]
    fn flow_ids_differ_by_direction() {
        assert_ne!(flow_id(0, 1, 42), flow_id(1, 0, 42));
        assert_ne!(flow_id(0, 1, 42), flow_id(0, 1, 43));
    }
}
