//! Cross-crate integration: full distributed trainings on every workload.

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use mini_nn::models::ModelKind;

/// Shrinks a config so the test finishes quickly while still training.
fn quicken(mut cfg: a2sgd::trainer::TrainConfig) -> a2sgd::trainer::TrainConfig {
    cfg.epochs = cfg.epochs.min(2);
    cfg.train_size = cfg.train_size.min(320);
    cfg.eval_size = cfg.eval_size.min(160);
    cfg
}

#[test]
fn fnn3_a2sgd_end_to_end() {
    let cfg = quicken(scaled_convergence_config(ModelKind::Fnn3, AlgoKind::A2sgd, 2, 3));
    let rep = train(&cfg);
    assert!(rep.final_metric > 50.0, "top-1 {} too low", rep.final_metric);
    assert_eq!(rep.wire_bits_per_iter, 64);
}

#[test]
fn resnet20_a2sgd_end_to_end() {
    // Smoke-scale run (a few dozen steps): the bar is "training moves",
    // i.e. the loss falls and the pipeline accounts traffic correctly;
    // accuracy on the hard CIFAR-like set needs the full scaled config
    // (regenerate via fig3_convergence --model resnet20).
    let cfg = quicken(scaled_convergence_config(ModelKind::ResNet20, AlgoKind::A2sgd, 2, 4));
    let rep = train(&cfg);
    assert!(rep.final_metric.is_finite() && rep.final_metric >= 5.0);
    let first = rep.epochs.first().unwrap().train_loss;
    let last = rep.epochs.last().unwrap().train_loss;
    assert!(last < first + 0.05, "loss did not move: {first} -> {last}");
    assert_eq!(rep.wire_bits_per_iter, 64);
}

#[test]
fn vgg16_a2sgd_end_to_end() {
    let cfg = quicken(scaled_convergence_config(ModelKind::Vgg16, AlgoKind::A2sgd, 2, 5));
    let rep = train(&cfg);
    assert!(rep.final_metric.is_finite());
    assert_eq!(rep.wire_bits_per_iter, 64);
    assert!(rep.epochs.len() == cfg.epochs);
}

#[test]
fn lstm_a2sgd_end_to_end() {
    let mut cfg = quicken(scaled_convergence_config(ModelKind::LstmPtb, AlgoKind::A2sgd, 2, 6));
    cfg.epochs = 3;
    cfg.train_size = 640;
    let rep = train(&cfg);
    // Perplexity must beat the uniform baseline (= vocab size 200); the
    // longer runs approach the corpus entropy floor.
    assert!(rep.final_metric < 195.0, "perplexity {} too high", rep.final_metric);
    assert_eq!(rep.wire_bits_per_iter, 64);
}

#[test]
fn lstm_perplexity_approaches_entropy_floor_with_training() {
    let mut cfg = scaled_convergence_config(ModelKind::LstmPtb, AlgoKind::Dense, 2, 7);
    cfg.epochs = 4;
    let rep = train(&cfg);
    let first = rep.epochs.first().unwrap().metric;
    let last = rep.epochs.last().unwrap().metric;
    assert!(last < first, "perplexity did not improve: {first} → {last}");
}
