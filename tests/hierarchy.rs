//! Topology invariants: `CommHandle::split` sub-communicators must be
//! indistinguishable — bit for bit — from standalone worlds of the same
//! size, on every backend, for the blocking and nonblocking collective
//! families alike; and the two-level hierarchical synchronizer must keep
//! the inter-group plane at the O(1) packet accounting on real sockets.
//!
//! Test names are CI gate prefixes: `split_parity_*` is the sub-
//! communicator parity matrix, `hier_*` the hierarchical-topology family.

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::{train, Topology};
use a2sgd_repro::cluster_comm::{
    run_cluster, run_cluster_hier_threads, run_cluster_tcp, run_cluster_tcp_threads,
    run_multiprocess, CollectiveAlgo, CommBackend, CommHandle, NetworkProfile, Payload,
};
use a2sgd_repro::gradcomp::bucket_bounds;
use mini_nn::models::ModelKind;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn seeded(rank: usize, n: usize, salt: u64) -> Vec<f32> {
    use a2sgd_repro::mini_tensor::rng::SeedRng;
    let mut rng = SeedRng::new(salt ^ (rank as u64).wrapping_mul(0x9E37_79B9));
    (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect()
}

/// One of everything, blocking and nonblocking, with inputs keyed only by
/// the communicator's own (rank, world) — so a sub-communicator of any
/// parent must reproduce a standalone world of the same size exactly.
fn group_workload(h: &mut CommHandle) -> Vec<f32> {
    let (rank, world) = (h.rank(), h.world());
    let mut out = Vec::new();
    for algo in [CollectiveAlgo::Ring, CollectiveAlgo::RecursiveDoubling, CollectiveAlgo::Auto] {
        let mut d = seeded(rank, 33, 0xA11);
        h.allreduce_sum_with(&mut d, algo);
        out.extend_from_slice(&d);
    }
    let mut b = if rank == 0 { seeded(99, 7, 0xB0) } else { vec![0.0f32; 7] };
    h.broadcast(0, &mut b);
    out.extend_from_slice(&b);
    for part in h.allgather(&seeded(rank, 5, 0xCA)) {
        out.extend_from_slice(&part);
    }
    // Nonblocking family, two collectives in flight at once.
    let r1 = h.start_allreduce(seeded(rank, 17, 0xD1));
    let frame = Payload::Bytes((0..4 + rank as u8).map(|b| b.wrapping_mul(37)).collect());
    let r2 = h.start_allgather_bytes(frame);
    out.extend(r1.wait(h).expect("allreduce").expect_reduced());
    for p in r2.wait(h).expect("allgather").expect_gathered() {
        out.extend(p.expect_bytes().into_iter().map(|b| b as f32));
    }
    if world % 2 == 0 {
        let rx = h.start_exchange_bytes(rank ^ 1, &Payload::Bytes(vec![rank as u8 ^ 0x5A; 5]));
        let p = rx.wait(h).expect("exchange").expect_exchanged();
        out.extend(p.expect_bytes().into_iter().map(|b| b as f32));
    }
    h.barrier();
    out
}

/// Reference: the workload on a *standalone* in-proc world of `size`.
fn standalone(size: usize) -> Vec<Vec<f32>> {
    run_cluster(size, NetworkProfile::infiniband_100g(), group_workload)
}

/// Splits `world` by `gid_of` (key = rank) and checks every group against
/// the standalone world of its size.
fn check_partition(world: usize, gid_of: fn(usize, usize) -> u64) {
    let outs = run_cluster(world, NetworkProfile::infiniband_100g(), move |h| {
        let gid = gid_of(h.rank(), h.world());
        let mut sub = h.split(Some(gid), h.rank() as u64).expect("in own group");
        (gid, sub.rank(), sub.world(), group_workload(&mut sub))
    });
    for (gid, sub_rank, sub_world, out) in &outs {
        let reference = standalone(*sub_world);
        assert_eq!(
            bits(out),
            bits(&reference[*sub_rank]),
            "world {world} group {gid} sub-rank {sub_rank}: split diverged from standalone"
        );
    }
}

#[test]
fn split_parity_matrix_inproc_worlds_2_to_8() {
    for world in 2..=8 {
        // Degenerate all-members group, degenerate 1-member groups, and a
        // contiguous two-way partition (ragged at odd worlds).
        check_partition(world, |_, _| 0);
        check_partition(world, |rank, _| rank as u64);
        check_partition(world, |rank, world| (rank >= world.div_ceil(2)) as u64);
    }
}

#[test]
fn split_parity_key_reorders_sub_ranks() {
    // Keys sort the group: rank r joins with key world - r, so sub-ranks
    // come out reversed and the collectives must follow the new order.
    let world = 4;
    let outs = run_cluster(world, NetworkProfile::infiniband_100g(), |h| {
        let key = (h.world() - h.rank()) as u64;
        let mut sub = h.split(Some(0), key).expect("in group");
        assert_eq!(sub.rank(), h.world() - 1 - h.rank());
        group_workload(&mut sub)
    });
    let reference = standalone(world);
    for (rank, out) in outs.iter().enumerate() {
        assert_eq!(bits(out), bits(&reference[world - 1 - rank]), "rank {rank}");
    }
}

#[test]
fn split_parity_nested_splits() {
    // Split twice: halves, then singletons inside each half. Both levels
    // must stay parity with standalone worlds (tag spaces nest).
    let outs = run_cluster(4, NetworkProfile::infiniband_100g(), |h| {
        let mut half = h.split(Some((h.rank() / 2) as u64), h.rank() as u64).expect("half");
        let half_out = group_workload(&mut half);
        let mut single = half.split(Some(half.rank() as u64), 0).expect("single");
        let single_out = group_workload(&mut single);
        (half.rank(), half_out, single_out)
    });
    let ref2 = standalone(2);
    let ref1 = standalone(1);
    for (sub_rank, half_out, single_out) in &outs {
        assert_eq!(bits(half_out), bits(&ref2[*sub_rank]));
        assert_eq!(bits(single_out), bits(&ref1[0]));
    }
}

#[test]
fn split_parity_none_group_ranks_sit_out() {
    // Ranks passing `None` get no sub-communicator but still participate
    // in the split collective; the formed group excludes them.
    let outs = run_cluster(4, NetworkProfile::infiniband_100g(), |h| {
        let member = h.rank() % 2 == 0;
        let sub = h.split(member.then_some(7), h.rank() as u64);
        match sub {
            Some(mut s) => {
                assert_eq!(s.world(), 2);
                Some(group_workload(&mut s))
            }
            None => None,
        }
    });
    let reference = standalone(2);
    assert!(outs[1].is_none() && outs[3].is_none());
    assert_eq!(bits(outs[0].as_ref().unwrap()), bits(&reference[0]));
    assert_eq!(bits(outs[2].as_ref().unwrap()), bits(&reference[1]));
}

#[test]
fn split_parity_tcp_threads() {
    // The same matrix shape on real loopback sockets: halves of a 4-rank
    // TCP world vs a standalone 2-rank TCP world.
    let split_outs = run_cluster_tcp_threads(4, |h| {
        let gid = (h.rank() / 2) as u64;
        let mut sub = h.split(Some(gid), h.rank() as u64).expect("in group");
        (sub.rank(), group_workload(&mut sub))
    });
    let reference = run_cluster_tcp_threads(2, group_workload);
    for (sub_rank, out) in &split_outs {
        assert_eq!(bits(out), bits(&reference[*sub_rank]), "tcp sub-rank {sub_rank}");
    }
    // And cross-backend: the TCP groups match the in-proc standalone too.
    let inproc = standalone(2);
    for (sub_rank, out) in &split_outs {
        assert_eq!(bits(out), bits(&inproc[*sub_rank]));
    }
}

/// Fork-pattern variant: 4 real OS processes split into two 2-rank
/// groups over loopback sockets. Children re-exec this test binary (the
/// `--exact` filter) and exit inside the launcher.
#[test]
fn split_parity_tcp_multiprocess() {
    let outs = run_cluster_tcp(4, &["split_parity_tcp_multiprocess", "--exact"], |h| {
        let mut sub = h.split(Some((h.rank() / 2) as u64), h.rank() as u64).expect("in group");
        let mut out = vec![sub.rank() as f32];
        out.extend(group_workload(&mut sub));
        out
    });
    let reference = standalone(2);
    for out in &outs {
        let sub_rank = out[0] as usize;
        assert_eq!(bits(&out[1..]), bits(&reference[sub_rank]), "process sub-rank {sub_rank}");
    }
}

#[test]
fn hier_mixed_backend_a2sgd_keeps_inter_plane_at_64_bits() {
    // The genuine mixed-backend hierarchy: in-proc mailboxes inside each
    // 2-rank group, real loopback TCP between the 2 leaders. Dense intra
    // average, A2SGD across leaders, broadcast back — the inter plane
    // must carry exactly the 64-bit packet per step, measured on sockets.
    let n = 4096;
    let outs = run_cluster_hier_threads(2, 2, |rank, mut hc| {
        let mut grad = seeded(rank, n, 0x6E);
        hc.intra.allreduce_avg(&mut grad);
        let group = hc.group();
        let inter_bits = if let Some(inter) = hc.inter.as_mut() {
            let mut sync = AlgoKind::A2sgd.build(n, 1, group);
            let before = inter.stats().logical_wire_bits;
            sync.sync_bucketed(&mut grad, &bucket_bounds(&[n], 1 << 20), inter);
            let bits = inter.stats().logical_wire_bits - before;
            assert!(inter.stats().wire_bytes > 0, "leader traffic must be real socket bytes");
            bits
        } else {
            0
        };
        hc.intra.broadcast(0, &mut grad);
        (hc.is_leader(), inter_bits, grad)
    });
    for (rank, (leader, inter_bits, _)) in outs.iter().enumerate() {
        assert_eq!(*leader, rank % 2 == 0);
        assert_eq!(*inter_bits, if *leader { 64 } else { 0 }, "rank {rank}");
    }
    // Everyone in a group ends on the leader's vector.
    assert_eq!(bits(&outs[0].2), bits(&outs[1].2));
    assert_eq!(bits(&outs[2].2), bits(&outs[3].2));
}

/// End-to-end acceptance: a full `hier(dense, a2sgd)` training run on the
/// TCP backend — 4 rank processes over real sockets, 2 groups of 2 — with
/// the inter-group plane at exactly the O(1) packet per iteration on
/// leaders and silent on members.
#[test]
fn hier_tcp_training_has_o1_inter_traffic() {
    let outs =
        run_multiprocess(4, &["hier_tcp_training_has_o1_inter_traffic", "--exact"], |_rank| {
            let mut cfg = scaled_convergence_config(ModelKind::Fnn3, AlgoKind::A2sgd, 4, 9);
            cfg.epochs = 2;
            cfg.train_size = 640;
            cfg.eval_size = 160;
            cfg.backend = CommBackend::Tcp;
            cfg.topology = Topology::Hier { group_size: 2 };
            let rep = train(&cfg);
            vec![
                rep.inter_wire_bits_per_iter as f32,
                rep.intra_wire_bits_per_iter as f32,
                rep.final_metric as f32,
            ]
        });
    for (rank, out) in outs.iter().enumerate() {
        let leader = rank % 2 == 0;
        assert_eq!(out[0], if leader { 64.0 } else { 0.0 }, "rank {rank} inter bits");
        assert!(out[1] > 0.0, "rank {rank}: dense intra plane must carry the gradient");
        assert!(out[2] > 30.0, "rank {rank}: accuracy {}", out[2]);
    }
}

#[test]
fn hier_inproc_group_sizes_match_flat_semantics() {
    // In-proc sanity across group sizes: the hierarchy trains to a
    // comparable metric and keeps the leader's inter accounting at the
    // inner algorithm's O(1) bits for every grouping of 4 workers.
    for group_size in [1, 2, 4] {
        let mut cfg = scaled_convergence_config(ModelKind::Fnn3, AlgoKind::A2sgd, 4, 9);
        cfg.epochs = 2;
        cfg.train_size = 640;
        cfg.eval_size = 160;
        cfg.topology = Topology::Hier { group_size };
        let rep = train(&cfg);
        assert_eq!(rep.inter_wire_bits_per_iter, 64, "group_size {group_size}");
        assert!(rep.final_metric > 30.0, "group_size {group_size}: {}", rep.final_metric);
    }
}
