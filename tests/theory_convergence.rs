//! Theorem-1 probes on the analytically-solvable distributed quadratic:
//! the A2SGD update converges to w* under Assumption-2 learning rates, and
//! Assumption 3's affine gradient bound holds along the trajectory.

use a2sgd::mean2::{residual_in_place, restore_with_global_means, split_means};
use a2sgd::theory::{affine_bound_fit, assumption2_probe, DistributedQuadratic};
use mini_tensor::rng::SeedRng;

/// One A2SGD step on the quadratic; returns worker 0's applied gradient.
fn a2sgd_step(q: &DistributedQuadratic, w: &[f32], rng: &mut SeedRng) -> Vec<f32> {
    let workers = q.centers.len();
    let mut grads: Vec<Vec<f32>> = (0..workers).map(|p| q.grad(p, w, rng)).collect();
    let mut sp = 0.0f32;
    let mut sn = 0.0f32;
    let mut masks = Vec::new();
    for g in grads.iter_mut() {
        let m = split_means(g);
        masks.push(residual_in_place(g, &m));
        sp += m.mu_pos;
        sn += m.mu_neg;
    }
    let (gp, gn) = (sp / workers as f32, sn / workers as f32);
    restore_with_global_means(&mut grads[0], &masks[0], gp, gn);
    grads.swap_remove(0)
}

#[test]
fn a2sgd_update_converges_on_homogeneous_quadratic() {
    // The paper's regime: IID workers (same objective, noisy gradients).
    let q = DistributedQuadratic::homogeneous(4, 32, 0.02, 11);
    let mut rng = SeedRng::new(12);
    let mut w = vec![0.0f32; 32];
    let h0 = q.h(&w);
    for t in 1..=6000usize {
        let eta = 0.5 / (1.0 + 0.01 * t as f32);
        let g = a2sgd_step(&q, &w, &mut rng);
        for (wi, gi) in w.iter_mut().zip(&g) {
            *wi -= eta * gi;
        }
    }
    let hf = q.h(&w);
    assert!(hf < h0 * 0.01, "h did not shrink: {h0} → {hf}");
    assert!(hf < 0.05, "final h too large: {hf}");
}

#[test]
fn heterogeneous_objectives_reveal_client_drift() {
    // Reproduction finding: with NON-IID workers (distinct local optima),
    // the A2SGD trajectory of worker 0 converges toward worker 0's own
    // optimum c_0, not the global w* — two scalar means per iteration
    // cannot carry the inter-worker directional disagreement. Theorem 1's
    // premise ∇C(w) = g + ∇µ only holds when shards are IID, which the
    // trainer guarantees via globally-permuted sharding.
    let q = DistributedQuadratic::new(4, 32, 0.0, 11);
    let mut rng = SeedRng::new(12);
    let mut w = vec![0.0f32; 32];
    for t in 1..=6000usize {
        let eta = 0.5 / (1.0 + 0.01 * t as f32);
        let g = a2sgd_step(&q, &w, &mut rng);
        for (wi, gi) in w.iter_mut().zip(&g) {
            *wi -= eta * gi;
        }
    }
    // Distance from worker 0's own optimum (should be small-ish)...
    let d0: f64 = w.iter().zip(&q.centers[0]).map(|(a, b)| ((a - b) as f64).powi(2)).sum();
    // ...versus distance from the global optimum (stays macroscopic).
    let hstar = q.h(&w);
    assert!(hstar > 1.0, "expected client drift away from w*: h = {hstar}");
    assert!(d0 < hstar, "trajectory should sit nearer c_0 ({d0}) than w* ({hstar})");
}

#[test]
fn dense_and_a2sgd_reach_similar_neighborhoods() {
    let q = DistributedQuadratic::homogeneous(4, 32, 0.02, 13);
    let run = |a2: bool| -> f64 {
        let mut rng = SeedRng::new(14);
        let mut w = vec![0.0f32; 32];
        for t in 1..=6000usize {
            let eta = 0.5 / (1.0 + 0.01 * t as f32);
            let g = if a2 {
                a2sgd_step(&q, &w, &mut rng)
            } else {
                let workers = q.centers.len();
                let gs: Vec<Vec<f32>> = (0..workers).map(|p| q.grad(p, &w, &mut rng)).collect();
                let mut avg = vec![0.0f32; 32];
                for g in &gs {
                    for i in 0..32 {
                        avg[i] += g[i] / workers as f32;
                    }
                }
                avg
            };
            for (wi, gi) in w.iter_mut().zip(&g) {
                *wi -= eta * gi;
            }
        }
        q.h(&w)
    };
    let hd = run(false);
    let ha = run(true);
    // Both in a small neighbourhood of w*; A2SGD within an order of
    // magnitude of dense (its update keeps the local residual).
    assert!(hd < 0.05, "dense h {hd}");
    assert!(ha < 10.0 * hd.max(1e-3), "a2sgd h {ha} vs dense {hd}");
}

#[test]
fn assumption3_affine_bound_holds_on_trajectory() {
    let q = DistributedQuadratic::homogeneous(4, 16, 0.05, 15);
    let mut rng = SeedRng::new(16);
    let mut w: Vec<f32> = (0..16).map(|_| rng.randn() * 3.0).collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for t in 1..=2000usize {
        let eta = 0.3 / (1.0 + 0.01 * t as f32);
        let g = a2sgd_step(&q, &w, &mut rng);
        xs.push(q.h(&w));
        ys.push(g.iter().map(|v| (*v as f64).powi(2)).sum::<f64>());
        for (wi, gi) in w.iter_mut().zip(&g) {
            *wi -= eta * gi;
        }
    }
    let (a, b, violation) = affine_bound_fit(&xs, &ys);
    assert!(a.is_finite() && b.is_finite());
    assert!(violation < 1e-9, "affine bound violated by {violation}");
    // The bound must be non-trivial: B > 0 because the quadratic's
    // gradient grows with distance from w*.
    assert!(b > 0.0);
}

#[test]
fn assumption2_schedule_used_in_probes_is_valid() {
    let (tail, sq_tail) = assumption2_probe(|t| 0.5 / (1.0 + 0.01 * t as f64), 200_000);
    assert!(tail > 1.0, "Ση tail {tail}");
    assert!(sq_tail < 0.05, "Ση² tail {sq_tail}");
}
