//! Distributed-semantics invariants across the whole stack, including
//! cross-backend consistency: the multi-process TCP data plane must be
//! bit-identical to the in-process mailboxes.

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use a2sgd_repro::cluster_comm::{
    run_cluster, run_cluster_tcp, run_cluster_tcp_threads, run_multiprocess, CollectiveAlgo,
    CommBackend, CommHandle, NetworkProfile, Payload,
};
use a2sgd_repro::gradcomp::{bucket_bounds, SyncSession};
use mini_nn::models::ModelKind;
use std::ops::Range;

fn cfg(algo: AlgoKind, workers: usize, seed: u64) -> a2sgd::trainer::TrainConfig {
    let mut c = scaled_convergence_config(ModelKind::Fnn3, algo, workers, seed);
    c.epochs = 2;
    c.train_size = 320;
    c.eval_size = 160;
    c
}

#[test]
fn dense_replicas_stay_identical() {
    let rep = train(&cfg(AlgoKind::Dense, 4, 1));
    assert!(rep.replica_divergence < 1e-5, "dense replicas diverged: {}", rep.replica_divergence);
}

#[test]
fn a2sgd_replicas_drift_boundedly_and_resync() {
    let rep = train(&cfg(AlgoKind::A2sgd, 4, 2));
    assert!(rep.replica_divergence > 0.0, "A2SGD must drift (local residuals)");
    assert!(rep.replica_divergence < 1.0, "drift unbounded: {}", rep.replica_divergence);
}

#[test]
fn worker_count_changes_traffic_not_semantics() {
    // Same seed, different worker counts: both runs must train sanely
    // (accuracy well above chance) and report identical per-worker wire
    // bits for A2SGD (O(1) regardless of P).
    let r2 = train(&cfg(AlgoKind::A2sgd, 2, 3));
    let r4 = train(&cfg(AlgoKind::A2sgd, 4, 3));
    assert_eq!(r2.wire_bits_per_iter, 64);
    assert_eq!(r4.wire_bits_per_iter, 64);
    assert!(r2.final_metric > 30.0 && r4.final_metric > 30.0);
}

#[test]
fn runs_are_bit_deterministic() {
    let a = train(&cfg(AlgoKind::A2sgd, 2, 4));
    let b = train(&cfg(AlgoKind::A2sgd, 2, 4));
    assert_eq!(a.final_metric, b.final_metric);
    assert_eq!(a.replica_divergence, b.replica_divergence);
    let la: Vec<f64> = a.epochs.iter().map(|e| e.train_loss).collect();
    let lb: Vec<f64> = b.epochs.iter().map(|e| e.train_loss).collect();
    assert_eq!(la, lb);
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Same per-rank inputs on every backend; concatenates one of each
/// collective's results.
fn collective_workload(h: &mut CommHandle) -> Vec<f32> {
    let input = |rank: usize, n: usize| -> Vec<f32> {
        use a2sgd_repro::mini_tensor::rng::SeedRng;
        let mut rng = SeedRng::new(0xC0DE ^ (rank as u64).wrapping_mul(0x9E37_79B9));
        (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect()
    };
    let mut out = Vec::new();
    for algo in [CollectiveAlgo::Ring, CollectiveAlgo::RecursiveDoubling, CollectiveAlgo::Auto] {
        let mut d = input(h.rank(), 41);
        h.allreduce_sum_with(&mut d, algo);
        out.extend_from_slice(&d);
    }
    let mut b = if h.rank() == 0 { input(17, 9) } else { vec![0.0f32; 9] };
    h.broadcast(0, &mut b);
    out.extend_from_slice(&b);
    for part in h.allgather(&input(h.rank(), 5)) {
        out.extend_from_slice(&part);
    }
    // Opaque encoded frames (the compressed-gradient path) must also be
    // backend-independent, byte for byte.
    let frame = Payload::Bytes((0..3 + h.rank() as u8).map(|b| b.wrapping_mul(41)).collect());
    for p in h.allgather_bytes(frame) {
        out.extend(p.expect_bytes().into_iter().map(|b| b as f32));
    }
    h.barrier();
    out
}

/// The acceptance gate for the transport subsystem: `run_cluster_tcp`
/// (4 real OS processes exchanging frames over loopback sockets) and
/// `run_cluster` (thread ranks over mailboxes) must produce *bit-identical*
/// collective results for the same inputs.
///
/// NOTE: this test re-executes the current test binary to create its rank
/// processes (the launcher's fork pattern); the `--exact` filter below
/// makes each child run only this test, and children exit inside
/// `run_cluster_tcp` after reporting their rank's result.
#[test]
fn tcp_multiprocess_collectives_match_inproc() {
    let world = 4;
    // Must come first: in a child process this call never returns.
    let tcp = run_cluster_tcp(
        world,
        &["tcp_multiprocess_collectives_match_inproc", "--exact"],
        collective_workload,
    );
    let inproc = run_cluster(world, NetworkProfile::infiniband_100g(), collective_workload);
    for rank in 0..world {
        assert_eq!(
            bits(&tcp[rank]),
            bits(&inproc[rank]),
            "rank {rank}: TCP and in-proc collectives diverged"
        );
    }
}

/// Full-stack version of the same invariant: an entire A2SGD training run
/// on the TCP backend (2 rank processes) must reproduce the in-proc loss
/// curve bit-for-bit — data synthesis, sharding, compression and the
/// collectives all line up across real sockets. The report scalars
/// (divergence, evaluation metric) must also agree *across TCP ranks*:
/// they are reduced/broadcast at the end of training instead of being
/// rank-local.
#[test]
fn tcp_multiprocess_training_matches_inproc() {
    let base = cfg(AlgoKind::A2sgd, 2, 6);
    let child_cfg = base.clone();
    let tcp =
        run_multiprocess(2, &["tcp_multiprocess_training_matches_inproc", "--exact"], move |_| {
            let mut c = child_cfg;
            c.backend = CommBackend::Tcp;
            let rep = train(&c);
            let mut out: Vec<f32> = rep.epochs.iter().map(|e| e.train_loss as f32).collect();
            out.push(rep.wire_bits_per_iter as f32);
            out.push(rep.replica_divergence as f32);
            out.push(rep.final_metric as f32);
            out
        });
    let rep = train(&base); // in-proc reference, rank 0's losses
    let mut expect: Vec<f32> = rep.epochs.iter().map(|e| e.train_loss as f32).collect();
    expect.push(rep.wire_bits_per_iter as f32);
    expect.push(rep.replica_divergence as f32);
    expect.push(rep.final_metric as f32);
    assert_eq!(bits(&tcp[0]), bits(&expect), "TCP training diverged from in-proc");
    let n = tcp[0].len();
    assert_eq!(tcp[0][n - 3], 64.0, "A2SGD wire bits over TCP");
    // Rank 1's shard losses differ, but the agreed report scalars must be
    // bit-identical to rank 0's (and to the in-proc run's).
    assert_eq!(
        bits(&tcp[1][n - 3..]),
        bits(&tcp[0][n - 3..]),
        "TCP ranks disagree on reduced report scalars"
    );
    assert!(tcp[0][n - 2] > 0.0, "A2SGD must report positive replica divergence");
    assert!(tcp[0][n - 1] > 30.0, "broadcast eval metric should reach every rank");
}

#[test]
fn traffic_ordering_matches_table2() {
    // Per-worker bits: A2SGD (64) < TopK (32k) < QSGD (~2.8n) < Dense (32n).
    let bits = |algo| train(&cfg(algo, 2, 5)).wire_bits_per_iter;
    let a2 = bits(AlgoKind::A2sgd);
    let topk = bits(AlgoKind::TopK(0.001));
    let qsgd = bits(AlgoKind::Qsgd(4));
    let dense = bits(AlgoKind::Dense);
    assert!(a2 < topk, "{a2} !< {topk}");
    assert!(topk < qsgd, "{topk} !< {qsgd}");
    assert!(qsgd < dense, "{qsgd} !< {dense}");
    assert_eq!(a2, 64);
}

// ---- bucketed-session parity ---------------------------------------------
//
// The bucketed pipeline's contract: for EVERY registered synchronizer,
// synchronizing through size-capped buckets is bit-identical to the
// single-shot whole-model call — across bucket caps (whole model, 64 KiB,
// 1 KiB), world sizes 1–4, and both transports. Bucketing must be a pure
// latency/overlap knob; any semantic leak (per-bucket statistics, RNG
// stream splits, reduction-order drift) fails here by algorithm name.

/// Every synchronizer the registry can build (the paper's five plus all
/// extensions/variants). Density/levels are turned up from the paper's
/// 0.001 so the test's small model still selects a multi-bucket payload.
fn all_registry_algos() -> Vec<AlgoKind> {
    vec![
        AlgoKind::Dense,
        AlgoKind::TopK(0.01),
        AlgoKind::GaussianK(0.01),
        AlgoKind::Qsgd(4),
        AlgoKind::A2sgd,
        AlgoKind::A2sgdAllgather,
        AlgoKind::A2sgdCarry,
        AlgoKind::KLevel(4),
        AlgoKind::RandK(0.01),
        AlgoKind::TernGrad,
        AlgoKind::SignSgd,
    ]
}

const PARITY_N: usize = 20_000;

fn parity_input(rank: usize, iter: usize, n: usize) -> Vec<f32> {
    use a2sgd_repro::mini_tensor::rng::SeedRng;
    let mut rng = SeedRng::new(0xB0CC ^ (rank as u64) << 8 ^ iter as u64);
    (0..n).map(|_| rng.randn() * 0.3).collect()
}

/// Two synchronized iterations (state such as error feedback must carry
/// across steps) under the given bucket cap; returns the output bits.
fn parity_body(h: &mut CommHandle, algo: AlgoKind, cap: Option<usize>) -> Vec<u32> {
    // A synthetic 20-layer layout: 1000-float segments, so a 64 KiB cap
    // packs 16 segments per bucket (2 buckets) and a 1 KiB cap isolates
    // every segment (20 buckets).
    let bounds: Vec<Range<usize>> = match cap {
        Some(c) => bucket_bounds(&[1000; PARITY_N / 1000], c),
        None => vec![0..PARITY_N; 1],
    };
    let mut sync = algo.build(PARITY_N, 77, h.rank());
    let mut out = Vec::new();
    for iter in 0..2 {
        let mut g = parity_input(h.rank(), iter, PARITY_N);
        sync.sync_bucketed(&mut g, &bounds, h);
        out.extend(g.iter().map(|v| v.to_bits()));
    }
    out
}

fn assert_bucket_parity_on<R>(backend_name: &str, run: R)
where
    R: Fn(usize, AlgoKind, Option<usize>) -> Vec<Vec<u32>>,
{
    for world in 1..=4usize {
        for algo in all_registry_algos() {
            let reference = run(world, algo, None);
            for cap in [64 * 1024, 1024] {
                let bucketed = run(world, algo, Some(cap));
                for rank in 0..world {
                    assert_eq!(
                        bucketed[rank],
                        reference[rank],
                        "{} ({backend_name}): world {world} cap {cap} rank {rank} diverged \
                         from single-shot",
                        algo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn bucket_parity_all_synchronizers_inproc() {
    assert_bucket_parity_on("inproc", |world, algo, cap| {
        run_cluster(world, NetworkProfile::infiniband_100g(), move |h| parity_body(h, algo, cap))
    });
}

#[test]
fn bucket_parity_all_synchronizers_tcp() {
    assert_bucket_parity_on("tcp", |world, algo, cap| {
        run_cluster_tcp_threads(world, move |h| parity_body(h, algo, cap))
    });
}

/// The streaming session surface is the same pipeline: submitting the
/// buckets as separate slices and finishing must equal `sync_bucketed`
/// over the contiguous vector (and therefore equal single-shot).
#[test]
fn bucket_parity_session_submit_matches_direct_drive() {
    let caps = [64 * 1024usize, 1024];
    for algo in [AlgoKind::Dense, AlgoKind::A2sgd, AlgoKind::Qsgd(4), AlgoKind::TopK(0.01)] {
        for cap in caps {
            let direct = run_cluster(2, NetworkProfile::infiniband_100g(), move |h| {
                parity_body(h, algo, Some(cap))
            });
            let sessioned = run_cluster(2, NetworkProfile::infiniband_100g(), move |h| {
                session_parity_body(h, algo, cap, false)
            });
            assert_eq!(sessioned, direct, "{} cap {cap}", algo.name());
        }
    }
}

/// Two synchronized iterations driven through the session surface,
/// submitting buckets either in layout order or — the hook arrival shape —
/// in reverse layout order.
fn session_parity_body(h: &mut CommHandle, algo: AlgoKind, cap: usize, reverse: bool) -> Vec<u32> {
    let bounds = bucket_bounds(&[1000; PARITY_N / 1000], cap);
    let mut sync = algo.build(PARITY_N, 77, h.rank());
    let mut out = Vec::new();
    for iter in 0..2 {
        let mut g = parity_input(h.rank(), iter, PARITY_N);
        let mut session = SyncSession::begin(sync.as_mut(), &bounds);
        let order: Vec<usize> =
            if reverse { (0..bounds.len()).rev().collect() } else { (0..bounds.len()).collect() };
        for id in order {
            session.submit(id, &g[bounds[id].clone()], h);
        }
        session.finish(&mut g, h);
        out.extend(g.iter().map(|v| v.to_bits()));
    }
    out
}

// ---- hook-driven parity ---------------------------------------------------
//
// The backward-overlap contract (the acceptance gate this PR adds): a
// hook-driven step — buckets submitted in *reverse* layout order as the
// backward pass delivers them, streamed straight to the wire for Dense —
// must be bit-identical to the single-shot `synchronize` call for every
// registered synchronizer, bucket cap, world size and backend; and on TCP
// loopback at least 2 frames must demonstrably be in flight *while the
// backward pass is still executing*.

/// Reverse-order (hook-shaped) session drive ≡ single-shot, all 11
/// registry synchronizers × caps {64 KiB, 1 KiB} × worlds 1–4, in-proc.
#[test]
fn hook_order_session_parity_all_synchronizers_inproc() {
    assert_hook_session_parity_on("inproc", |world, algo, cap| match cap {
        Some(c) => run_cluster(world, NetworkProfile::infiniband_100g(), move |h| {
            session_parity_body(h, algo, c, true)
        }),
        None => run_cluster(world, NetworkProfile::infiniband_100g(), move |h| {
            parity_body(h, algo, None)
        }),
    });
}

/// Same sweep over real loopback sockets.
#[test]
fn hook_order_session_parity_all_synchronizers_tcp() {
    assert_hook_session_parity_on("tcp", |world, algo, cap| match cap {
        Some(c) => run_cluster_tcp_threads(world, move |h| session_parity_body(h, algo, c, true)),
        None => run_cluster_tcp_threads(world, move |h| parity_body(h, algo, None)),
    });
}

fn assert_hook_session_parity_on<R>(backend_name: &str, run: R)
where
    R: Fn(usize, AlgoKind, Option<usize>) -> Vec<Vec<u32>>,
{
    for world in 1..=4usize {
        for algo in all_registry_algos() {
            let reference = run(world, algo, None);
            for cap in [64 * 1024, 1024] {
                let hooked = run(world, algo, Some(cap));
                for rank in 0..world {
                    assert_eq!(
                        hooked[rank],
                        reference[rank],
                        "{} ({backend_name}): world {world} cap {cap} rank {rank}: hook-order \
                         submission diverged from single-shot",
                        algo.name()
                    );
                }
            }
        }
    }
}

/// Hook-driven *training* (per-layer callbacks firing the session from
/// inside `backward_hooked`) ≡ single-shot training, for every registry
/// synchronizer × caps {whole-model, 64 KiB, 1 KiB} × worlds 1–4 on the
/// in-proc backend. The TCP data plane is covered by
/// `hook_training_parity_tcp_multiprocess` (processes) and the session
/// sweep above (sockets).
#[test]
fn hook_training_parity_all_synchronizers() {
    for world in 1..=4usize {
        for algo in all_registry_algos() {
            let mut base = cfg(algo, world, 9);
            base.epochs = 1;
            base.train_size = 192;
            base.eval_size = 64;
            let reference = train(&base);
            for cap in [None, Some(64 * 1024), Some(1024)] {
                let mut hooked_cfg = base.clone();
                hooked_cfg.overlap_backward = true;
                hooked_cfg.bucket_bytes = cap;
                let hooked = train(&hooked_cfg);
                let la: Vec<u64> =
                    reference.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
                let lb: Vec<u64> = hooked.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
                assert_eq!(
                    la,
                    lb,
                    "{}: world {world} cap {cap:?}: hooked losses diverged",
                    algo.name()
                );
                assert_eq!(
                    reference.final_metric.to_bits(),
                    hooked.final_metric.to_bits(),
                    "{}: world {world} cap {cap:?}",
                    algo.name()
                );
                assert_eq!(
                    reference.replica_divergence.to_bits(),
                    hooked.replica_divergence.to_bits(),
                    "{}: world {world} cap {cap:?}",
                    algo.name()
                );
                // Wire accounting: hooks must not change what crosses the
                // wire. Bucketing itself may (honest per-bucket padding +
                // re-shipped scale words for the sub-byte encodings), so
                // the single-shot comparison only holds for uncapped runs
                // and for the bucket-invariant encodings.
                // (Dense's f32 lanes need no padding; the A2SGD family
                // ignores bucketing entirely — O(1) packet either way.)
                let bucket_invariant = matches!(
                    algo,
                    AlgoKind::Dense
                        | AlgoKind::A2sgd
                        | AlgoKind::A2sgdAllgather
                        | AlgoKind::A2sgdCarry
                        | AlgoKind::KLevel(_)
                );
                if cap.is_none() || bucket_invariant {
                    assert_eq!(
                        reference.wire_bits_per_iter,
                        hooked.wire_bits_per_iter,
                        "{}: world {world} cap {cap:?}: wire accounting drifted",
                        algo.name()
                    );
                }
            }
        }
    }
}

/// Hook-driven training over real rank *processes* on loopback TCP must
/// reproduce the in-proc single-shot loss curve bit-for-bit (fork-pattern
/// launcher; children exit inside `run_multiprocess`).
#[test]
fn hook_training_parity_tcp_multiprocess() {
    let algos = [AlgoKind::Dense, AlgoKind::A2sgd, AlgoKind::Qsgd(4), AlgoKind::TopK(0.01)];
    let tcp =
        run_multiprocess(2, &["hook_training_parity_tcp_multiprocess", "--exact"], move |_| {
            let mut out = Vec::new();
            for algo in algos {
                let mut c = cfg(algo, 2, 11);
                c.backend = CommBackend::Tcp;
                c.overlap_backward = true;
                c.bucket_bytes = Some(1024);
                let rep = train(&c);
                out.extend(rep.epochs.iter().map(|e| e.train_loss as f32));
                out.push(rep.final_metric as f32);
            }
            out
        });
    let mut expect = Vec::new();
    for algo in algos {
        let rep = train(&cfg(algo, 2, 11));
        expect.extend(rep.epochs.iter().map(|e| e.train_loss as f32));
        expect.push(rep.final_metric as f32);
    }
    assert_eq!(bits(&tcp[0]), bits(&expect), "hooked TCP training diverged from in-proc");
}

/// The overlap proof on real sockets: with a streaming synchronizer and
/// per-layer buckets, ≥ 2 collective exchanges are concurrently in flight
/// *while the backward pass is still executing* — observed from inside the
/// gradient-ready hook itself, not inferred from timing.
#[test]
fn hook_overlap_inflight_proof_tcp() {
    use a2sgd::overlap::{HookLayout, HookedStep};
    use a2sgd_repro::mini_nn::hook::GradHook;
    use a2sgd_repro::mini_nn::models::{ModelKind, Preset};
    use a2sgd_repro::mini_nn::module::{Mode, ModuleExt};
    use a2sgd_repro::mini_tensor::rng::SeedRng;
    use a2sgd_repro::mini_tensor::Tensor;

    /// Delegates to the real driver, recording the in-flight depth seen
    /// at each per-layer callback (i.e. during backward).
    struct Probe<'a, 'b> {
        step: HookedStep<'a>,
        peak_during_backward: &'b mut usize,
    }
    impl GradHook for Probe<'_, '_> {
        fn grad_ready(&mut self, p: &a2sgd_repro::mini_nn::Param) {
            self.step.grad_ready(p);
            *self.peak_during_backward = (*self.peak_during_backward).max(self.step.inflight());
        }
    }

    let peaks = run_cluster_tcp_threads(2, |h| {
        let mut model = ModelKind::Fnn3.build(Preset::Scaled, 13);
        let layout = HookLayout::of(model.as_mut(), Some(1024));
        assert!(layout.bounds().len() >= 4, "need several buckets for an overlap proof");
        let mut sync = AlgoKind::Dense.build(layout.total(), 0, h.rank());
        let mut flat = Vec::new();
        let x = SeedRng::new(14 + h.rank() as u64).randn_tensor(&[4, 1, 28, 28], 1.0);
        model.zero_grad();
        let y = model.forward(&x, Mode::Train);
        let mut peak = 0usize;
        let mut probe = Probe {
            step: HookedStep::begin(&layout, sync.as_mut(), &mut flat, h),
            peak_during_backward: &mut peak,
        };
        let _ = model.backward_hooked(&Tensor::ones(y.shape().clone()), &mut probe);
        probe.step.finish();
        assert!(h.max_inflight() >= 2, "max_inflight {} after the step", h.max_inflight());
        peak
    });
    for (rank, peak) in peaks.into_iter().enumerate() {
        assert!(
            peak >= 2,
            "rank {rank}: only {peak} exchange(s) in flight during the backward pass"
        );
    }
}
