//! Distributed-semantics invariants across the whole stack.

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use mini_nn::models::ModelKind;

fn cfg(algo: AlgoKind, workers: usize, seed: u64) -> a2sgd::trainer::TrainConfig {
    let mut c = scaled_convergence_config(ModelKind::Fnn3, algo, workers, seed);
    c.epochs = 2;
    c.train_size = 320;
    c.eval_size = 160;
    c
}

#[test]
fn dense_replicas_stay_identical() {
    let rep = train(&cfg(AlgoKind::Dense, 4, 1));
    assert!(rep.replica_divergence < 1e-5, "dense replicas diverged: {}", rep.replica_divergence);
}

#[test]
fn a2sgd_replicas_drift_boundedly_and_resync() {
    let rep = train(&cfg(AlgoKind::A2sgd, 4, 2));
    assert!(rep.replica_divergence > 0.0, "A2SGD must drift (local residuals)");
    assert!(rep.replica_divergence < 1.0, "drift unbounded: {}", rep.replica_divergence);
}

#[test]
fn worker_count_changes_traffic_not_semantics() {
    // Same seed, different worker counts: both runs must train sanely
    // (accuracy well above chance) and report identical per-worker wire
    // bits for A2SGD (O(1) regardless of P).
    let r2 = train(&cfg(AlgoKind::A2sgd, 2, 3));
    let r4 = train(&cfg(AlgoKind::A2sgd, 4, 3));
    assert_eq!(r2.wire_bits_per_iter, 64);
    assert_eq!(r4.wire_bits_per_iter, 64);
    assert!(r2.final_metric > 30.0 && r4.final_metric > 30.0);
}

#[test]
fn runs_are_bit_deterministic() {
    let a = train(&cfg(AlgoKind::A2sgd, 2, 4));
    let b = train(&cfg(AlgoKind::A2sgd, 2, 4));
    assert_eq!(a.final_metric, b.final_metric);
    assert_eq!(a.replica_divergence, b.replica_divergence);
    let la: Vec<f64> = a.epochs.iter().map(|e| e.train_loss).collect();
    let lb: Vec<f64> = b.epochs.iter().map(|e| e.train_loss).collect();
    assert_eq!(la, lb);
}

#[test]
fn traffic_ordering_matches_table2() {
    // Per-worker bits: A2SGD (64) < TopK (32k) < QSGD (~2.8n) < Dense (32n).
    let bits = |algo| train(&cfg(algo, 2, 5)).wire_bits_per_iter;
    let a2 = bits(AlgoKind::A2sgd);
    let topk = bits(AlgoKind::TopK(0.001));
    let qsgd = bits(AlgoKind::Qsgd(4));
    let dense = bits(AlgoKind::Dense);
    assert!(a2 < topk, "{a2} !< {topk}");
    assert!(topk < qsgd, "{topk} !< {qsgd}");
    assert!(qsgd < dense, "{qsgd} !< {dense}");
    assert_eq!(a2, 64);
}
