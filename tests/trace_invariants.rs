//! Structural invariants of the tracing subsystem, checked on traces from
//! real training runs rather than hand-built event streams:
//!
//! - span begin/end events balance (including nesting) on every thread;
//! - timestamps recorded "at now" (instants, span ends) are monotonic
//!   per thread — `now_ns()` never runs backwards;
//! - every transport flow id balances: each send-side flow event has
//!   exactly one receive-side partner;
//! - the merged Chrome trace-event JSON is well-formed and maps ranks to
//!   Chrome processes;
//! - on the hook-overlap TCP scenario, the summed `bucket/inflight`
//!   spans reproduce the `overlap_seconds` the runtime reported about
//!   itself (the `audit/overlap_seconds` instant).

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use a2sgd_repro::cluster_comm::{run_multiprocess, tcp_child_rank, CommBackend};
use a2sgd_trace::{Args, Ph, ThreadTrace, TraceData};
use mini_nn::models::ModelKind;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// The recorder is process-global; traced tests must not interleave.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("a2sgd_trace_inv_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn small_cfg(algo: AlgoKind, workers: usize) -> a2sgd::trainer::TrainConfig {
    let mut c = scaled_convergence_config(ModelKind::Fnn3, algo, workers, 7);
    c.epochs = 2;
    c.train_size = 320;
    c.eval_size = 160;
    c
}

/// Balanced spans; monotonic "recorded at now" timestamps; async
/// begin/end balance per (name, id).
fn check_stream(t: &ThreadTrace) {
    let mut span_stack = 0i64;
    let mut last_now = 0u64;
    let mut async_open: HashMap<(&str, u64), i64> = HashMap::new();
    for ev in &t.events {
        match ev.ph {
            Ph::SpanBegin => span_stack += 1,
            Ph::SpanEnd => {
                span_stack -= 1;
                assert!(span_stack >= 0, "thread {}: span end without begin", t.name);
                // Closed spans push their end at the moment it happened,
                // so end timestamps advance monotonically even though
                // nested begins are back-dated.
                assert!(ev.t_ns >= last_now, "thread {}: span end went backwards", t.name);
                last_now = ev.t_ns;
            }
            Ph::Instant => {
                assert!(ev.t_ns >= last_now, "thread {}: instant went backwards", t.name);
                last_now = ev.t_ns;
            }
            Ph::AsyncBegin => *async_open.entry((ev.name, ev.id)).or_default() += 1,
            Ph::AsyncEnd => {
                let open = async_open.entry((ev.name, ev.id)).or_default();
                *open -= 1;
                assert!(*open >= 0, "thread {}: async end before begin: {}", t.name, ev.name);
            }
            Ph::FlowOut | Ph::FlowIn | Ph::Counter => {}
        }
    }
    assert_eq!(span_stack, 0, "thread {}: unbalanced spans at end of stream", t.name);
    for ((name, id), open) in async_open {
        assert_eq!(open, 0, "thread {}: async {name}#{id} never ended", t.name);
    }
}

/// Every send-side flow event pairs with exactly one receive-side one.
fn check_flows(data: &TraceData) {
    let mut balance: HashMap<u64, i64> = HashMap::new();
    for t in &data.threads {
        for ev in &t.events {
            match ev.ph {
                Ph::FlowOut => *balance.entry(ev.id).or_default() += 1,
                Ph::FlowIn => *balance.entry(ev.id).or_default() -= 1,
                _ => {}
            }
        }
    }
    let unmatched: Vec<_> = balance.iter().filter(|(_, v)| **v != 0).collect();
    assert!(unmatched.is_empty(), "unpaired transport flows: {unmatched:?}");
}

#[test]
fn traced_inproc_run_satisfies_stream_invariants() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("inproc");
    let mut cfg = small_cfg(AlgoKind::A2sgd, 2);
    cfg.trace = Some(dir.clone());
    let rep = train(&cfg);
    assert!(rep.final_metric > 30.0, "traced run must still train");

    let data = a2sgd_trace::load_dir(&dir).unwrap();
    assert_eq!(data.dropped, 0, "small run must not overflow the ring");
    let ranks: Vec<_> = data.threads.iter().filter_map(|t| t.rank).collect();
    assert!(ranks.contains(&0) && ranks.contains(&1), "both thread ranks declared: {ranks:?}");
    for t in &data.threads {
        assert!(!t.events.is_empty(), "thread {} recorded nothing", t.name);
        check_stream(t);
    }
    check_flows(&data);

    // The merged document must be valid JSON with ranks as processes.
    let chrome = a2sgd_trace::chrome_trace_json(&data);
    a2sgd_trace::json::validate(&chrome).unwrap();
    assert!(chrome.contains("\"rank 0\"") && chrome.contains("\"rank 1\""));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The satellite acceptance check: on the hook-overlap TCP scenario the
/// trace must *reproduce* the overlap number the runtime reported, from
/// span algebra alone — `Σ (bucket/inflight)` vs `audit/overlap_seconds`
/// on every rank, within max(2 ms, 5 %).
#[test]
fn trace_overlap_matches_reported_overlap_tcp() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Re-exec'd rank children re-enter this test fn; they must keep the
    // parent's A2SGD_TRACE (and not wipe its directory) so every rank's
    // trace lands in one place. run_multiprocess dispatches them to the
    // closure and exits the process there.
    let dir = if tcp_child_rank().is_some() {
        PathBuf::new() // unused: the child exits inside run_multiprocess
    } else {
        let dir = tmp_dir("overlap_tcp");
        // Forked rank processes inherit the trace directory via the env;
        // each writes its own trace-<pid>.jsonl before reporting back.
        std::env::set_var("A2SGD_TRACE", &dir);
        dir
    };
    let outs =
        run_multiprocess(2, &["trace_overlap_matches_reported_overlap_tcp", "--exact"], |_| {
            let mut c = small_cfg(AlgoKind::Dense, 2);
            c.backend = CommBackend::Tcp;
            c.overlap_backward = true;
            c.bucket_bytes = Some(1024);
            let rep = train(&c);
            vec![rep.final_metric as f32]
        });
    std::env::remove_var("A2SGD_TRACE");
    assert_eq!(outs.len(), 2);

    let data = a2sgd_trace::load_dir(&dir).unwrap();
    assert_eq!(data.dropped, 0, "small run must not overflow the ring");
    for t in &data.threads {
        check_stream(t);
    }
    check_flows(&data);

    let mut audited_ranks = 0;
    for t in data.threads.iter().filter(|t| t.rank.is_some()) {
        let mut open: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut span_sum = 0.0f64;
        let mut reported = None;
        for ev in &t.events {
            match ev.ph {
                Ph::AsyncBegin if ev.name == "bucket/inflight" => {
                    open.entry(ev.id).or_default().push(ev.t_ns);
                }
                Ph::AsyncEnd if ev.name == "bucket/inflight" => {
                    let t0 = open.get_mut(&ev.id).and_then(|q| q.pop()).unwrap();
                    span_sum += ev.t_ns.saturating_sub(t0) as f64 / 1e9;
                }
                Ph::Instant if ev.name == "audit/overlap_seconds" => {
                    if let Args::Value(v) = ev.args {
                        reported = Some(v);
                    }
                }
                _ => {}
            }
        }
        let rank = t.rank.unwrap();
        let reported = reported.unwrap_or_else(|| panic!("rank {rank}: no overlap audit"));
        assert!(span_sum > 0.0, "rank {rank}: overlap run recorded no in-flight spans");
        let tol = (0.05 * reported).max(2e-3);
        assert!(
            (span_sum - reported).abs() <= tol,
            "rank {rank}: span-derived overlap {span_sum:.6}s vs reported {reported:.6}s \
             (tol {tol:.4}s)"
        );
        audited_ranks += 1;
    }
    assert_eq!(audited_ranks, 2, "both TCP rank processes must be audited");
    let _ = std::fs::remove_dir_all(&dir);
}
