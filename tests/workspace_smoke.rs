//! Workspace smoke test: the umbrella re-exports resolve and the core
//! A2SGD pipeline pieces compose — tensor construction, the two-level
//! means round-trip, and one allreduce on the simulated cluster.

use a2sgd_repro::a2sgd::{restore_with_global_means, split_means};
use a2sgd_repro::cluster_comm::{run_cluster, NetworkProfile};
use a2sgd_repro::mini_tensor::Tensor;

#[test]
fn umbrella_reexports_resolve_and_compose() {
    // 1. Tensor construction through the umbrella path.
    let t = Tensor::from_vec(vec![1.0f32, -2.0, 3.0, -4.0], [2, 2]);
    assert_eq!(t.shape().numel(), 4);

    // 2. split_means + residual + restore round-trips a small gradient.
    let g = vec![0.5f32, -1.5, 2.0, -0.25, 0.0, 3.5];
    let means = split_means(&g);
    assert_eq!(means.n_pos + means.n_neg, g.len());
    let mut work = g.clone();
    let mask = a2sgd_repro::a2sgd::mean2::residual_in_place(&mut work, &means);
    restore_with_global_means(&mut work, &mask, means.mu_pos, means.mu_neg);
    for (restored, original) in work.iter().zip(&g) {
        assert!(
            (restored - original).abs() < 1e-5,
            "round-trip mismatch: {restored} vs {original}"
        );
    }

    // 3. One allreduce across a 4-rank simulated cluster.
    let sums = run_cluster(4, NetworkProfile::infiniband_100g(), |h| {
        let mut v = vec![(h.rank() + 1) as f32];
        h.allreduce_sum(&mut v);
        v[0]
    });
    assert_eq!(sums.len(), 4);
    for s in sums {
        assert!((s - 10.0).abs() < 1e-6, "allreduce sum {s} != 10");
    }
}

#[test]
fn two_means_travel_as_64_bits() {
    // The paper's headline claim in miniature: the exchanged state is two
    // f32 scalars regardless of gradient size.
    let g: Vec<f32> = (0..10_000).map(|i| ((i as f32) * 0.37).sin() * 0.01).collect();
    let m = split_means(&g);
    let wire = [m.mu_pos, m.mu_neg];
    assert_eq!(std::mem::size_of_val(&wire) * 8, 64);
}
