//! Sync-schedule invariants across the whole stack.
//!
//! The schedule subsystem's contract, checked end to end:
//!
//! * **Exactness** — `fixed1` (a degenerate one-step window every step) is
//!   bit-identical to the unscheduled trainer for every synchronizer the
//!   registry can build, so turning the schedule knob cannot perturb the
//!   classic path.
//! * **Traffic** — over real loopback sockets, `fixed8` cuts dense
//!   measured wire bytes by the window factor: communication reduction in
//!   *time*, orthogonal to the compressors' reduction in *space*.
//! * **Convergence** — `sched(fixed8, a2sgd)` still trains to within
//!   tolerance of every-step A2SGD at equal iterations.

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use a2sgd::{SchedKind, TrainReport};
use a2sgd_repro::cluster_comm::{run_multiprocess, CommBackend};
use mini_nn::models::ModelKind;

fn cfg(algo: AlgoKind, workers: usize, seed: u64) -> a2sgd::trainer::TrainConfig {
    let mut c = scaled_convergence_config(ModelKind::Fnn3, algo, workers, seed);
    c.epochs = 2;
    c.train_size = 320;
    c.eval_size = 160;
    c
}

/// Every synchronizer the registry can build (the paper's five plus all
/// extensions/variants), with density/levels turned up so the scaled
/// model still produces non-trivial frames.
fn all_registry_algos() -> Vec<AlgoKind> {
    vec![
        AlgoKind::Dense,
        AlgoKind::TopK(0.01),
        AlgoKind::GaussianK(0.01),
        AlgoKind::Qsgd(4),
        AlgoKind::A2sgd,
        AlgoKind::A2sgdAllgather,
        AlgoKind::A2sgdCarry,
        AlgoKind::KLevel(4),
        AlgoKind::RandK(0.01),
        AlgoKind::TernGrad,
        AlgoKind::SignSgd,
    ]
}

/// Everything a schedule could plausibly perturb, as exact bits.
fn fingerprint(rep: &TrainReport) -> Vec<u64> {
    let mut f: Vec<u64> = rep.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
    f.push(rep.final_metric.to_bits());
    f.push(rep.replica_divergence.to_bits());
    f.push(rep.wire_bits_per_iter);
    f.push(rep.measured_wire_bytes);
    f
}

/// `fixed1` ≡ unscheduled, bit for bit, for all 11 registry synchronizers:
/// every window is degenerate, so every step must take the classic
/// gradient path with zero schedule residue in the report.
#[test]
fn fixed1_parity_all_synchronizers_inproc() {
    for algo in all_registry_algos() {
        let base = cfg(algo, 2, 21);
        let reference = train(&base);
        let mut s = base.clone();
        s.schedule = SchedKind::Fixed(1);
        let scheduled = train(&s);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&scheduled),
            "{}: fixed1 diverged from the unscheduled trainer",
            algo.name()
        );
        assert_eq!(scheduled.local_steps, 0, "{}", algo.name());
        assert_eq!(scheduled.sync_steps, scheduled.iters, "{}", algo.name());
        // The label still advertises the schedule — same math, but the
        // figures must be able to tell the rows apart.
        assert!(scheduled.label.contains("sched(fixed1"), "label: {}", scheduled.label);
    }
}

/// The traffic claim over real rank processes on loopback TCP: dense
/// training under `fixed8` moves ~an eighth of every-step dense's bytes
/// (fork-pattern launcher; children exit inside `run_multiprocess`).
#[test]
fn fixed8_cuts_dense_tcp_wire_bytes() {
    let tcp = run_multiprocess(2, &["fixed8_cuts_dense_tcp_wire_bytes", "--exact"], move |_| {
        let mut out = Vec::new();
        for sched in [SchedKind::EveryStep, SchedKind::Fixed(8)] {
            let mut c = cfg(AlgoKind::Dense, 2, 23);
            c.backend = CommBackend::Tcp;
            c.schedule = sched;
            let rep = train(&c);
            // f32 lanes are the launcher's payload; ship the byte counts
            // pre-divided so mantissa rounding cannot bite.
            out.push((rep.measured_wire_bytes as f64 / 1024.0) as f32);
            out.push((rep.measured_sync_wire_bytes as f64 / 1024.0) as f32);
            out.push(rep.iters as f32);
            out.push(rep.sync_steps as f32);
        }
        out
    });
    for (rank, lanes) in tcp.iter().enumerate() {
        let (every_total, every_sync) = (lanes[0] as f64, lanes[1] as f64);
        let (fixed_total, fixed_sync) = (lanes[4] as f64, lanes[5] as f64);
        let (iters, syncs) = (lanes[6] as f64, lanes[7] as f64);
        assert_eq!(lanes[2], lanes[6], "rank {rank}: iteration counts differ");
        assert_eq!(lanes[3], lanes[2], "rank {rank}: every-step run skipped a sync");
        // 20 iterations, window 8 ⇒ syncs at steps 7 and 15 only.
        assert_eq!(syncs, (iters / 8.0).floor(), "rank {rank}: wrong sync count under fixed8");
        // Per-step sync traffic scales exactly with the sync count; the
        // full-run total also carries the run-constant tail (final
        // re-average + metric broadcast), so its ratio sits a bit below
        // iters/syncs but still clears the headline ≥ 6×.
        let sync_ratio = every_sync / fixed_sync;
        let total_ratio = every_total / fixed_total;
        let want = iters / syncs;
        assert!(
            (sync_ratio - want).abs() < 0.2,
            "rank {rank}: sync-byte ratio {sync_ratio:.2}, want ~{want:.1}"
        );
        assert!(total_ratio >= 6.0, "rank {rank}: total wire-byte ratio {total_ratio:.2} under 6x");
    }
}

/// Convergence rides along: local SGD every 8 steps composed with the
/// O(1) packet still reaches an accuracy near every-step A2SGD at equal
/// iterations (the schedule trades sync frequency, not trainability).
#[test]
fn fixed8_a2sgd_converges_within_tolerance_of_every_step() {
    let base = cfg(AlgoKind::A2sgd, 2, 25);
    let reference = train(&base);
    let mut s = base.clone();
    s.schedule = SchedKind::Fixed(8);
    let scheduled = train(&s);
    assert!(reference.final_metric > 30.0, "reference failed to train: {}", reference.final_metric);
    assert!(
        scheduled.final_metric > 30.0,
        "sched(fixed8, a2sgd) failed to train: {}",
        scheduled.final_metric
    );
    assert!(
        (scheduled.final_metric - reference.final_metric).abs() < 15.0,
        "fixed8 accuracy {} too far from every-step {}",
        scheduled.final_metric,
        reference.final_metric
    );
    assert_eq!(scheduled.sync_steps + scheduled.local_steps, scheduled.iters);
    assert!(scheduled.label.contains("sched(fixed8"), "label: {}", scheduled.label);
}
