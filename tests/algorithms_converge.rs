//! The paper's central convergence claim, as an integration test: on the
//! same workload, A2SGD's accuracy stays close to Dense's, and every
//! compression baseline still learns.

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use mini_nn::models::ModelKind;

fn run(algo: AlgoKind, workers: usize) -> f64 {
    let mut cfg = scaled_convergence_config(ModelKind::Fnn3, algo, workers, 21);
    cfg.epochs = 3;
    cfg.train_size = 960;
    cfg.eval_size = 320;
    train(&cfg).final_metric
}

#[test]
fn a2sgd_matches_dense_within_tolerance() {
    let dense = run(AlgoKind::Dense, 4);
    let a2 = run(AlgoKind::A2sgd, 4);
    assert!(dense > 80.0, "dense baseline degenerate: {dense}");
    assert!(a2 >= dense - 10.0, "A2SGD ({a2}) fell more than 10 points below Dense ({dense})");
}

#[test]
fn all_paper_algorithms_beat_chance() {
    for algo in AlgoKind::paper_five() {
        let acc = run(algo, 4);
        assert!(acc > 30.0, "{} final accuracy {acc} ≤ chance+", algo.name());
    }
}

#[test]
fn extensions_also_learn() {
    for algo in [AlgoKind::A2sgdAllgather, AlgoKind::KLevel(4), AlgoKind::SignSgd] {
        let acc = run(algo, 2);
        assert!(acc > 30.0, "{} final accuracy {acc}", algo.name());
    }
}

#[test]
fn klevel_interpolates_between_a2sgd_and_dense() {
    // More levels ⇒ less encoding distortion ⇒ accuracy at least as good
    // (statistically; allow slack).
    let l1 = run(AlgoKind::KLevel(1), 2);
    let l8 = run(AlgoKind::KLevel(8), 2);
    assert!(l8 >= l1 - 5.0, "L=8 ({l8}) much worse than L=1 ({l1})");
}
