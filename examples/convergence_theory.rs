//! Empirical probe of the paper's §3.2 convergence analysis on an
//! analytically-solvable distributed quadratic: tracks the Lyapunov
//! sequence h_t = ‖w_t − w*‖² under the A2SGD update and fits
//! Assumption 3's affine bound E‖g + ∇µ‖² ≤ A + B·h.
//!
//! Run: `cargo run --release --example convergence_theory`

use a2sgd::mean2::{residual_in_place, restore_with_global_means, split_means};
use a2sgd::theory::{affine_bound_fit, DistributedQuadratic};
use mini_tensor::rng::SeedRng;

fn main() {
    let workers = 4;
    let dim = 64;
    // Homogeneous (IID-shard) regime — the one the paper's Theorem 1
    // addresses. Swap in `DistributedQuadratic::new` to watch the
    // heterogeneous client-drift failure mode instead.
    let q = DistributedQuadratic::homogeneous(workers, dim, 0.05, 9);
    let mut rng = SeedRng::new(10);

    let mut w = vec![0.0f32; dim];
    let mut hs = Vec::new();
    let mut xs = Vec::new(); // h_t samples
    let mut ys = Vec::new(); // ‖g + ∇µ‖² samples

    println!("Distributed quadratic, {workers} workers, dim {dim}, A2SGD update\n");
    println!("{:>6} {:>14} {:>12}", "iter", "h_t = ‖w−w*‖²", "η_t");
    for t in 1..=4000usize {
        let eta = 0.5 / (1.0 + t as f32 * 0.01); // satisfies Assumption 2

        // Each worker: local gradient → two means; exchange averages them.
        let mut grads: Vec<Vec<f32>> = (0..workers).map(|p| q.grad(p, &w, &mut rng)).collect();
        let mut sum_p = 0.0f32;
        let mut sum_n = 0.0f32;
        let mut masks = Vec::new();
        for g in grads.iter_mut() {
            let m = split_means(g);
            masks.push(residual_in_place(g, &m));
            sum_p += m.mu_pos;
            sum_n += m.mu_neg;
        }
        let (gp, gn) = (sum_p / workers as f32, sum_n / workers as f32);
        // Every worker applies ε + global means; the *model state* follows
        // worker 0 (replicas differ only by their residuals).
        for (g, mask) in grads.iter_mut().zip(&masks) {
            restore_with_global_means(g, mask, gp, gn);
        }
        let gnorm2: f64 = grads[0].iter().map(|v| (*v as f64).powi(2)).sum();
        let h = q.h(&w);
        xs.push(h);
        ys.push(gnorm2);
        for (wi, gi) in w.iter_mut().zip(&grads[0]) {
            *wi -= eta * gi;
        }
        if t.is_power_of_two() || t == 4000 {
            println!("{t:>6} {:>14.6} {:>12.5}", h, eta);
        }
        hs.push(h);
    }

    let (a, b, violation) = affine_bound_fit(&xs, &ys);
    println!("\nAssumption 3 probe: E‖g + ∇µ‖² ≤ A + B·h with A = {a:.4}, B = {b:.4}");
    println!(
        "max bound violation: {:.2e} (≈ 0 ⇒ the affine bound holds on this trajectory)",
        violation
    );
    let final_h = *hs.last().unwrap();
    println!(
        "\nfinal h_t = {final_h:.6} (started at {:.4}) — converged toward w* as Theorem 1 predicts",
        hs[0]
    );
}
