//! LSTM language modelling with A2SGD on the synthetic Markov corpus —
//! the workload where the paper reports its headline 3.2×/23.2× gains.
//!
//! Run: `cargo run --release --example language_model`

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use mini_nn::models::ModelKind;
use synthdata::MarkovText;

fn main() {
    // The corpus' conditional entropy gives a perplexity floor any model
    // can at best reach — the analogue of PTB's ~80–140 range.
    let probe = MarkovText::new(200, 4, 1000, 16, 0);
    println!("Synthetic PTB stand-in: vocab 200, Zipf-Markov transitions");
    println!("theoretical perplexity floor: {:.2}\n", probe.perplexity_floor());

    for algo in [AlgoKind::Dense, AlgoKind::A2sgd, AlgoKind::TopK(0.001)] {
        let cfg = scaled_convergence_config(ModelKind::LstmPtb, algo, 4, 29);
        let rep = train(&cfg);
        println!("── {} ──", rep.label);
        for e in &rep.epochs {
            println!(
                "  epoch {:>2}  train-loss {:>7.4}  perplexity {:>9.2}",
                e.epoch, e.train_loss, e.metric
            );
        }
        println!("  wire bits/iter/worker: {}\n", rep.wire_bits_per_iter);
    }
    println!("Perplexity should fall from ~vocab-size toward the floor; A2SGD");
    println!("tracks Dense while sending 64 bits instead of ~2.6 Mbit per iteration.");
}
