//! Scaling study: throughput and scaling efficiency across worker counts
//! and network speeds — the Table 2 metric, interactively.
//!
//! Run: `cargo run --release --example scaling_study`

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::metrics::scaling_efficiency;
use a2sgd::registry::AlgoKind;
use a2sgd::report::Table;
use a2sgd::trainer::train;
use cluster_comm::NetworkProfile;
use mini_nn::models::ModelKind;

fn main() {
    println!("Scaling study: FNN-3, Dense vs A2SGD, P ∈ {{2, 4, 8}}\n");

    for profile in [NetworkProfile::infiniband_100g(), NetworkProfile::ethernet_1g()] {
        println!("=== network: {} ===", profile.name);
        let mut dense2_thr = 0.0;
        let mut t = Table::new(
            &format!("throughput on {}", profile.name),
            &["P", "Dense samp/s", "A2SGD samp/s", "Dense SE", "A2SGD SE"],
        );
        for p in [2usize, 4, 8] {
            let mut row = vec![p.to_string()];
            let mut thr = Vec::new();
            for algo in [AlgoKind::Dense, AlgoKind::A2sgd] {
                let mut cfg = scaled_convergence_config(ModelKind::Fnn3, algo, p, 31);
                cfg.epochs = 2;
                cfg.profile = profile;
                let rep = train(&cfg);
                thr.push(rep.throughput);
            }
            if p == 2 {
                dense2_thr = thr[0];
            }
            row.push(format!("{:.0}", thr[0]));
            row.push(format!("{:.0}", thr[1]));
            row.push(format!("{:.2}", scaling_efficiency(thr[0], dense2_thr)));
            row.push(format!("{:.2}", scaling_efficiency(thr[1], dense2_thr)));
            t.row(&row);
            eprintln!("  P = {p} done");
        }
        println!("{}", t.render());
    }
    println!("On the slow network A2SGD's advantage over Dense widens sharply —");
    println!("the gradient exchange is 64 bits instead of 32·n.");
}
