//! Compares every gradient-synchronization algorithm in the workspace —
//! the paper's five plus the extensions — on one workload.
//!
//! Run: `cargo run --release --example compare_compressors`

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::metrics::compression_ratio;
use a2sgd::registry::AlgoKind;
use a2sgd::report::{fmt_seconds, Table};
use a2sgd::trainer::train;
use mini_nn::models::ModelKind;

fn main() {
    let algos = [
        AlgoKind::Dense,
        AlgoKind::TopK(0.001),
        AlgoKind::GaussianK(0.001),
        AlgoKind::Qsgd(4),
        AlgoKind::A2sgd,
        AlgoKind::A2sgdAllgather,
        AlgoKind::A2sgdCarry,
        AlgoKind::KLevel(4),
        AlgoKind::RandK(0.001),
        AlgoKind::TernGrad,
        AlgoKind::SignSgd,
    ];
    println!("Comparing {} synchronization algorithms on FNN-3 (4 workers)\n", algos.len());

    let mut t = Table::new(
        "algorithm comparison",
        &[
            "algorithm",
            "final top-1 %",
            "bits/iter/worker",
            "ratio vs dense",
            "sim time (s)",
            "t_compress/iter",
            "t_exchange/iter",
        ],
    );
    let mut n_params = 0usize;
    for algo in algos {
        let cfg = scaled_convergence_config(ModelKind::Fnn3, algo, 4, 13);
        if n_params == 0 {
            let mut m = cfg.model.build(cfg.preset, cfg.seed);
            n_params = mini_nn::flat::param_count(m.as_mut());
        }
        let rep = train(&cfg);
        t.row(&[
            algo.name().into(),
            format!("{:.2}", rep.final_metric),
            rep.wire_bits_per_iter.to_string(),
            format!("{:.0}×", compression_ratio(n_params, rep.wire_bits_per_iter)),
            format!("{:.3}", rep.total_sim_seconds),
            fmt_seconds(rep.avg_compress_seconds),
            fmt_seconds(rep.avg_exchange_seconds),
        ]);
        eprintln!("  done: {}", algo.name());
    }
    println!("{}", t.render());
    println!(
        "Note the A2SGD family's constant 64-bit rows (KLevel: 64·L bits); the last two \
         columns split per-iteration sync cost into compression compute vs measured time \
         inside collective calls."
    );
}
