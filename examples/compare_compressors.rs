//! Compares every gradient-synchronization algorithm in the workspace —
//! the paper's five plus the extensions — on one workload, including
//! rows that compose a compressor with a sync schedule (local SGD):
//! compressors shrink each sync in *space*, schedules skip syncs in
//! *time*, and the two multiply.
//!
//! Run: `cargo run --release --example compare_compressors`

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::metrics::compression_ratio;
use a2sgd::registry::AlgoKind;
use a2sgd::report::{fmt_seconds, Table};
use a2sgd::trainer::{train, Topology};
use a2sgd::SchedKind;
use mini_nn::models::ModelKind;

fn main() {
    let algos = [
        (AlgoKind::Dense, Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::TopK(0.001), Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::GaussianK(0.001), Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::Qsgd(4), Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::A2sgd, Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::A2sgdAllgather, Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::A2sgdCarry, Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::KLevel(4), Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::RandK(0.001), Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::TernGrad, Topology::Flat, SchedKind::EveryStep),
        (AlgoKind::SignSgd, Topology::Flat, SchedKind::EveryStep),
        // The two-level topology: dense inside each 2-rank group, the
        // O(1) A2SGD packet across the two group leaders.
        (AlgoKind::A2sgd, Topology::Hier { group_size: 2 }, SchedKind::EveryStep),
        // Schedule composition: the same synchronizers firing every 8th
        // step only. Dense shows the pure time-axis saving; A2SGD stacks
        // it on the O(1) packet (64 bits / 8 steps = 8 effective
        // bits/step); adaptive widens the window as training flattens.
        (AlgoKind::Dense, Topology::Flat, SchedKind::Fixed(8)),
        (AlgoKind::A2sgd, Topology::Flat, SchedKind::Fixed(8)),
        (AlgoKind::A2sgd, Topology::Flat, SchedKind::Adaptive(4)),
    ];
    println!("Comparing {} synchronization configurations on FNN-3 (4 workers)\n", algos.len());

    let mut t = Table::new(
        "algorithm comparison",
        &[
            "algorithm",
            "final top-1 %",
            "eff bits/step/worker",
            "ratio vs dense",
            "syncs/iters",
            "messages",
            "framing B",
            "sim time (s)",
            "t_compress/iter",
            "t_exchange/iter",
        ],
    );
    let mut n_params = 0usize;
    for (algo, topology, schedule) in algos {
        let mut cfg = scaled_convergence_config(ModelKind::Fnn3, algo, 4, 13);
        cfg.topology = topology;
        cfg.schedule = schedule;
        if n_params == 0 {
            let mut m = cfg.model.build(cfg.preset, cfg.seed);
            n_params = mini_nn::flat::param_count(m.as_mut());
        }
        let rep = train(&cfg);
        let label = rep.label.clone();
        t.row(&[
            label.clone(),
            format!("{:.2}", rep.final_metric),
            rep.wire_bits_per_iter.to_string(),
            format!("{:.0}×", compression_ratio(n_params, rep.wire_bits_per_iter)),
            format!("{}/{}", rep.sync_steps, rep.iters),
            rep.messages.to_string(),
            rep.framing_bytes.to_string(),
            format!("{:.3}", rep.total_sim_seconds),
            fmt_seconds(rep.avg_compress_seconds),
            fmt_seconds(rep.avg_exchange_seconds),
        ]);
        eprintln!("  done: {label}");
    }
    println!("{}", t.render());
    println!(
        "Note the A2SGD family's constant 64-bit rows (KLevel: 64·L bits); the last two \
         columns split per-iteration sync cost into compression compute vs measured time \
         inside collective calls. `eff bits/step/worker` amortizes wire traffic over ALL \
         optimizer steps, so the sched(...) rows divide the per-sync payload by the \
         window length — `syncs/iters` shows how many steps actually hit the network. \
         `messages` counts rank-0's point-to-point sends and `framing B` its wire bytes \
         beyond the raw payload (zero on the in-proc backend, 16 B/frame over TCP). The \
         hier(dense, A2SGD) row pays a dense intra-group exchange but keeps the \
         leader-to-leader plane at the same constant 64 bits."
    );
}
