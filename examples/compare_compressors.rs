//! Compares every gradient-synchronization algorithm in the workspace —
//! the paper's five plus the extensions — on one workload.
//!
//! Run: `cargo run --release --example compare_compressors`

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::metrics::compression_ratio;
use a2sgd::registry::AlgoKind;
use a2sgd::report::{fmt_seconds, Table};
use a2sgd::trainer::{train, Topology};
use mini_nn::models::ModelKind;

fn main() {
    let algos = [
        (AlgoKind::Dense, Topology::Flat),
        (AlgoKind::TopK(0.001), Topology::Flat),
        (AlgoKind::GaussianK(0.001), Topology::Flat),
        (AlgoKind::Qsgd(4), Topology::Flat),
        (AlgoKind::A2sgd, Topology::Flat),
        (AlgoKind::A2sgdAllgather, Topology::Flat),
        (AlgoKind::A2sgdCarry, Topology::Flat),
        (AlgoKind::KLevel(4), Topology::Flat),
        (AlgoKind::RandK(0.001), Topology::Flat),
        (AlgoKind::TernGrad, Topology::Flat),
        (AlgoKind::SignSgd, Topology::Flat),
        // The two-level topology: dense inside each 2-rank group, the
        // O(1) A2SGD packet across the two group leaders.
        (AlgoKind::A2sgd, Topology::Hier { group_size: 2 }),
    ];
    println!("Comparing {} synchronization algorithms on FNN-3 (4 workers)\n", algos.len());

    let mut t = Table::new(
        "algorithm comparison",
        &[
            "algorithm",
            "final top-1 %",
            "bits/iter/worker",
            "ratio vs dense",
            "messages",
            "framing B",
            "sim time (s)",
            "t_compress/iter",
            "t_exchange/iter",
        ],
    );
    let mut n_params = 0usize;
    for (algo, topology) in algos {
        let mut cfg = scaled_convergence_config(ModelKind::Fnn3, algo, 4, 13);
        cfg.topology = topology;
        if n_params == 0 {
            let mut m = cfg.model.build(cfg.preset, cfg.seed);
            n_params = mini_nn::flat::param_count(m.as_mut());
        }
        let label = cfg.algo_label();
        let rep = train(&cfg);
        t.row(&[
            label.clone(),
            format!("{:.2}", rep.final_metric),
            rep.wire_bits_per_iter.to_string(),
            format!("{:.0}×", compression_ratio(n_params, rep.wire_bits_per_iter)),
            rep.messages.to_string(),
            rep.framing_bytes.to_string(),
            format!("{:.3}", rep.total_sim_seconds),
            fmt_seconds(rep.avg_compress_seconds),
            fmt_seconds(rep.avg_exchange_seconds),
        ]);
        eprintln!("  done: {label}");
    }
    println!("{}", t.render());
    println!(
        "Note the A2SGD family's constant 64-bit rows (KLevel: 64·L bits); the last two \
         columns split per-iteration sync cost into compression compute vs measured time \
         inside collective calls. `messages` counts rank-0's point-to-point sends and \
         `framing B` its wire bytes beyond the raw payload (zero on the in-proc \
         backend, 16 B/frame over TCP). The hier(dense, A2SGD) row pays a dense \
         intra-group exchange but keeps the leader-to-leader plane at the same \
         constant 64 bits."
    );
}
