//! Quickstart: train a classifier with A2SGD on a 4-worker simulated
//! cluster and compare its traffic with dense SGD.
//!
//! Run: `cargo run --release --example quickstart`

use a2sgd::experiments::scaled_convergence_config;
use a2sgd::registry::AlgoKind;
use a2sgd::trainer::train;
use mini_nn::models::ModelKind;

fn main() {
    println!("A2SGD quickstart: FNN-3 on synthetic MNIST, 4 simulated workers\n");

    for algo in [AlgoKind::Dense, AlgoKind::A2sgd] {
        let cfg = scaled_convergence_config(ModelKind::Fnn3, algo, 4, 7);
        let rep = train(&cfg);
        println!("── {} ──", rep.label);
        for e in &rep.epochs {
            println!(
                "  epoch {:>2}  train-loss {:>7.4}  top-1 {:>6.2}%  sim-time {:>8.3}s",
                e.epoch, e.train_loss, e.metric, e.sim_seconds
            );
        }
        println!(
            "  per-iteration traffic: {} bits/worker  (compression ratio vs dense: {:.0}×)",
            rep.wire_bits_per_iter,
            a2sgd::metrics::compression_ratio(199_210, rep.wire_bits_per_iter)
        );
        println!("  replica divergence before final sync: {:.2e}\n", rep.replica_divergence);
    }

    println!("A2SGD sends 64 bits per worker per iteration — O(1) in model size —");
    println!("while matching dense SGD's accuracy trajectory.");
}
