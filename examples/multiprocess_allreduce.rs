//! Multi-process TCP allreduce on loopback — the paper's 64-bit packet on
//! a real wire.
//!
//! Forks `A2SGD_WORLD` (default 4) rank processes of this binary, runs the
//! torchrun-style rendezvous on 127.0.0.1, and compares two exchanges:
//! a dense gradient allreduce and A2SGD's packed-u64 two-means packet,
//! printing the *measured* per-rank traffic for each.
//!
//! ```text
//! A2SGD_WORLD=4 cargo run --release --example multiprocess_allreduce
//! ```

use a2sgd_repro::a2sgd::algorithm::A2sgd;
use a2sgd_repro::cluster_comm::transport::wire::FRAME_HEADER_BYTES;
use a2sgd_repro::cluster_comm::{run_cluster_tcp, tcp_child_rank, CollectiveAlgo, Payload};

const DENSE_N: usize = 16_384; // a 64 KiB "gradient"

fn main() {
    let world: usize = std::env::var("A2SGD_WORLD").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let parent = tcp_child_rank().is_none();

    // Children exit inside; only the parent sees the results.
    let results = run_cluster_tcp(world, &[], |h| {
        let rank = h.rank();

        // Dense baseline: every rank contributes a full gradient.
        let mut dense: Vec<f32> =
            (0..DENSE_N).map(|i| (rank * DENSE_N + i) as f32 * 1e-6).collect();
        h.allreduce_sum_with(&mut dense, CollectiveAlgo::Ring);
        let dense_stats = h.stats();
        h.reset_stats();

        // A2SGD: the whole per-iteration exchange is one packed u64.
        let word = A2sgd::encode_means(0.5 + rank as f32, -0.25);
        let gathered = h.allgather_bytes(Payload::PackedU64(vec![word]));
        let mut packet = [0.0f32, 0.0];
        for frame in gathered {
            let (p, n) = A2sgd::decode_means(frame.expect_u64()[0]);
            packet[0] += p;
            packet[1] += n;
        }
        let packet_stats = h.stats();

        vec![
            dense[0],
            dense[DENSE_N - 1],
            packet[0],
            packet[1],
            dense_stats.wire_bytes as f32,
            packet_stats.wire_bytes as f32,
            packet_stats.messages as f32,
            packet_stats.logical_wire_bits as f32,
        ]
    });

    assert!(parent, "children exit inside the launcher");
    let wf = world as f32;
    let expect_packet0 = (0..world).map(|r| 0.5 + r as f32).sum::<f32>();
    println!("rank | dense[0]     | packet        | dense wire B | packet wire B (msgs)");
    for (rank, r) in results.iter().enumerate() {
        println!(
            "{rank:>4} | {:<12} | ({:>5}, {:>5}) | {:>12} | {:>8} ({})",
            r[0], r[2], r[3], r[4], r[5], r[6]
        );
        assert_eq!(r[2], expect_packet0, "rank {rank} packet sum");
        assert_eq!(r[3], -0.25 * wf, "rank {rank} packet sum");
        assert_eq!(r[7], 64.0, "rank {rank}: A2SGD logical payload must be 64 bits");
        // Measured on the socket: every frame of the packet gather is the
        // 64-bit packed-u64 payload plus the fixed header.
        assert_eq!(r[5], r[6] * (8 + FRAME_HEADER_BYTES) as f32, "rank {rank} framing");
        assert!(r[4] > 100.0 * r[5], "dense should dwarf the A2SGD packet on the wire");
    }
    println!(
        "OK: {world}-process loopback cluster; A2SGD moved 64 bits + {FRAME_HEADER_BYTES} B/frame \
         framing per iteration while dense moved ~{:.0} KiB per rank.",
        results[0][4] / 1024.0
    );
}
